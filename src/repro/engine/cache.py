"""Content-addressed artifact cache (memory + on-disk tiers).

Stage outputs — symmetrized and pruned :class:`UndirectedGraph`
artifacts — are addressed by a sha256 *artifact key* derived from

1. the sha256 content fingerprint of the input dataset (the same
   digest :func:`repro.obs.manifest.fingerprint_graph` records in run
   manifests), and
2. the canonical configuration hash of every stage in the artifact's
   lineage, in order (see :func:`config_hash`).

Two runs that feed byte-identical graphs through identically
configured stages therefore share a key, while any change to the
dataset, to a stage parameter (threshold, alpha, beta, ...) or to the
stage order produces a different key. Keys are stable across
processes and machines: the canonical form is JSON with sorted keys
and no whitespace.

The cache has two tiers:

- a **memory tier** (always on): an LRU dict holding artifact objects,
  bounded by ``max_bytes`` when given;
- an optional **disk tier** under ``directory``: one subdirectory per
  artifact in a ``datasets/storage``-style layout::

      <directory>/<key[:2]>/<key>/
        artifact.npz   # CSR indptr / indices / data / shape
        meta.json      # key, fingerprints, lineage, sizes

Cache traffic is metered through :mod:`repro.obs.metrics` as
``cache_hits_total`` / ``cache_misses_total`` counters and a
``cache_bytes`` gauge whenever a registry is active, and the
``repro cache list/stats/clear`` CLI inspects the disk tier.

An *ambient* cache can be installed for a block with
:func:`artifact_cache`; sweeps and experiment runners pick it up
automatically, so one ``with artifact_cache(cache):`` around a grid
reuses every symmetrized/pruned artifact across its cells.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import os
import shutil
import threading
import time
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator

import numpy as np
import scipy.sparse as sp

from repro.engine.chaos import chaos
from repro.exceptions import ExecutionWarning, ReproError
from repro.graph.ugraph import UndirectedGraph
from repro.obs.metrics import metric_inc, metric_set

__all__ = [
    "ARTIFACT_KEY_VERSION",
    "ArtifactCache",
    "artifact_cache",
    "current_cache",
    "config_hash",
    "artifact_key",
    "default_cache_dir",
]

#: Version tag folded into every artifact key; bump to invalidate all
#: previously stored artifacts on a breaking change to the key scheme
#: or the on-disk format.
ARTIFACT_KEY_VERSION = "repro-artifact/v1"

_ARTIFACT_FILE = "artifact.npz"
_META_FILE = "meta.json"


def _canonical(value: Any) -> Any:
    """Coerce ``value`` into a deterministically serializable form."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(config: dict[str, Any]) -> str:
    """The canonical JSON form hashing is defined over.

    Sorted keys, no whitespace, NaN rejected — byte-identical for
    equal configurations regardless of dict insertion order, process
    or platform.
    """
    return json.dumps(
        _canonical(config),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def config_hash(config: dict[str, Any]) -> str:
    """sha256 of the canonical JSON form of ``config`` (full hex)."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()


def artifact_key(
    dataset_sha: str,
    lineage: list[str] | tuple[str, ...],
    mode: str = "strict",
) -> str:
    """The content address of a stage output.

    Parameters
    ----------
    dataset_sha:
        sha256 content fingerprint of the lineage's input graph (from
        :func:`repro.obs.manifest.fingerprint_graph`).
    lineage:
        The :meth:`~repro.engine.stage.Stage.fingerprint` of every
        stage from the input up to and including the producing stage,
        in execution order.
    mode:
        The executor's robustness mode — lenient runs may repair the
        input, so their artifacts must not alias strict ones.
    """
    digest = hashlib.sha256()
    digest.update(ARTIFACT_KEY_VERSION.encode())
    digest.update(b"\x00" + mode.encode())
    digest.update(b"\x00" + dataset_sha.encode())
    for fp in lineage:
        digest.update(b"\x00" + fp.encode())
    return digest.hexdigest()


def default_cache_dir() -> Path:
    """The disk-tier default: ``$REPRO_CACHE_DIR`` or the XDG cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "artifacts"


def _graph_nbytes(graph: UndirectedGraph) -> int:
    csr = graph.adjacency
    return int(
        csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes
    )


def _json_safe_names(names: list | None) -> list | None:
    if names is None:
        return None
    if all(isinstance(n, (str, int, float, bool)) for n in names):
        return list(names)
    return None


class ArtifactCache:
    """Two-tier content-addressed store for stage artifacts.

    Parameters
    ----------
    directory:
        Enable the disk tier under this path (created lazily). ``None``
        keeps the cache memory-only.
    max_bytes:
        Soft cap on the memory tier; least-recently-used artifacts are
        evicted once the resident CSR payload exceeds it. ``None``
        (default) means unbounded.

    Examples
    --------
    >>> from repro.engine import ArtifactCache, artifact_cache
    >>> from repro.pipeline import sweep_threshold
    >>> cache = ArtifactCache()
    >>> with artifact_cache(cache):            # doctest: +SKIP
    ...     cold = sweep_threshold(g, [0.1, 0.2], "metis", 8)
    ...     warm = sweep_threshold(g, [0.1, 0.2], "metis", 8)
    >>> cache.hits > 0                         # doctest: +SKIP
    True
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.max_bytes = max_bytes
        self._memory: OrderedDict[str, UndirectedGraph] = OrderedDict()
        self._memory_bytes = 0
        self.hits = 0
        self.misses = 0
        self.keys_seen: list[str] = []
        # One cache instance is shared by every worker thread of the
        # service daemon; all tier mutation (LRU order, byte
        # accounting, hit/miss counters) happens under this lock.
        # Re-entrant because get() promotes disk hits via
        # _memory_put() while already holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Core get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> UndirectedGraph | None:
        """The artifact stored under ``key``, or ``None`` on a miss.

        Memory-tier hits move the entry to most-recently-used; disk
        hits are promoted into the memory tier.
        """
        with self._lock:
            artifact = self._memory.get(key)
            if artifact is None and self.directory is not None:
                artifact = self._disk_get(key)
                if artifact is not None:
                    self._memory_put(key, artifact)
            if artifact is None:
                self.misses += 1
                metric_inc("cache_misses_total")
                return None
            if key in self._memory:
                self._memory.move_to_end(key)
            self.hits += 1
            self._note_key(key)
        metric_inc("cache_hits_total")
        return artifact

    def put(
        self,
        key: str,
        artifact: UndirectedGraph,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Store ``artifact`` under ``key`` in every enabled tier."""
        if not isinstance(artifact, UndirectedGraph):
            raise ReproError(
                "ArtifactCache stores UndirectedGraph artifacts, got "
                f"{type(artifact).__name__}"
            )
        with self._lock:
            self._memory_put(key, artifact)
            self._note_key(key)
            if self.directory is not None:
                self._disk_put(key, artifact, meta or {})

    def _note_key(self, key: str) -> None:
        with self._lock:
            if key not in self.keys_seen:
                self.keys_seen.append(key)

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------
    def _memory_put(self, key: str, artifact: UndirectedGraph) -> None:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                return
            self._memory[key] = artifact
            self._memory_bytes += _graph_nbytes(artifact)
            if self.max_bytes is not None:
                while (
                    self._memory_bytes > self.max_bytes
                    and len(self._memory) > 1
                ):
                    _, evicted = self._memory.popitem(last=False)
                    self._memory_bytes -= _graph_nbytes(evicted)
            metric_set("cache_bytes", self._memory_bytes)

    @property
    def memory_bytes(self) -> int:
        """Resident CSR payload of the memory tier, in bytes."""
        with self._lock:
            return self._memory_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return (
            self.directory is not None
            and (self._entry_dir(key) / _ARTIFACT_FILE).exists()
        )

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / key

    def _disk_put(
        self, key: str, artifact: UndirectedGraph, meta: dict[str, Any]
    ) -> None:
        flag = chaos("cache.disk_put")
        entry = self._entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        csr = artifact.adjacency.tocsr()
        payload: dict[str, Any] = {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "data": csr.data,
            "shape": np.asarray(csr.shape, dtype=np.int64),
        }
        names = _json_safe_names(artifact.node_names)
        tmp = entry / (_ARTIFACT_FILE + ".tmp")
        with tmp.open("wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(entry / _ARTIFACT_FILE)
        record = {
            "key": key,
            "created_unix": time.time(),
            "n_nodes": int(csr.shape[0]),
            "nnz": int(csr.nnz),
            "nbytes": _graph_nbytes(artifact),
            "node_names": names,
            **meta,
        }
        meta_tmp = entry / (_META_FILE + ".tmp")
        with meta_tmp.open("w") as handle:
            handle.write(
                json.dumps(record, indent=2, default=_canonical)
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
        meta_tmp.replace(entry / _META_FILE)
        self._fsync_dir(entry)
        if flag is not None and flag.kind == "corrupt":
            # Chaos: garble the persisted artifact the way a torn
            # write would, so recovery paths can be exercised.
            (entry / _ARTIFACT_FILE).write_bytes(b"\x00corrupt")

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)

    def _disk_get(self, key: str) -> UndirectedGraph | None:
        entry = self._entry_dir(key)
        path = entry / _ARTIFACT_FILE
        if not path.exists():
            if (entry / _META_FILE).exists():
                # A meta.json without its artifact is the signature
                # of a crash mid-put (or a torn cleanup): drop the
                # orphan so it cannot shadow a future write.
                shutil.rmtree(entry, ignore_errors=True)
                warnings.warn(
                    ExecutionWarning(
                        f"cache entry {key[:16]} had metadata but "
                        "no artifact (orphan from an interrupted "
                        "write); dropped",
                        code="cache_orphan",
                    ),
                    stacklevel=3,
                )
                metric_inc("cache_orphans_dropped_total")
            return None
        try:
            with np.load(path) as loaded:
                shape = tuple(int(v) for v in loaded["shape"])
                csr = sp.csr_array(
                    (
                        loaded["data"],
                        loaded["indices"],
                        loaded["indptr"],
                    ),
                    shape=shape,
                )
            names = None
            meta_path = entry / _META_FILE
            if meta_path.exists():
                names = json.loads(meta_path.read_text()).get(
                    "node_names"
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None  # treat a corrupt entry as a miss
        return UndirectedGraph(csr, node_names=names, validate=False)

    # ------------------------------------------------------------------
    # Introspection / management (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def entries(self) -> list[dict[str, Any]]:
        """Metadata of every disk-tier artifact, oldest first."""
        if self.directory is None or not self.directory.exists():
            return []
        found: list[dict[str, Any]] = []
        for meta_path in sorted(
            self.directory.glob(f"*/*/{_META_FILE}")
        ):
            try:
                record = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            found.append(record)
        found.sort(key=lambda r: r.get("created_unix", 0.0))
        return found

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters plus per-tier sizes."""
        disk = self.entries()
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "memory_entries": len(self._memory),
                "memory_bytes": self._memory_bytes,
                "disk_entries": len(disk),
                "disk_bytes": int(
                    sum(r.get("nbytes", 0) for r in disk)
                ),
                "directory": (
                    str(self.directory) if self.directory else None
                ),
            }

    def clear(self, disk: bool = True) -> int:
        """Drop every entry; returns the number of entries removed."""
        with self._lock:
            removed = len(self._memory)
            self._memory.clear()
            self._memory_bytes = 0
            metric_set("cache_bytes", 0)
        if disk and self.directory is not None and self.directory.exists():
            removed += len(self.entries())
            shutil.rmtree(self.directory)
        return removed

    def __repr__(self) -> str:
        tier = f"disk={str(self.directory)!r}" if self.directory else (
            "memory-only"
        )
        return (
            f"ArtifactCache({tier}, entries={len(self._memory)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_CACHE: contextvars.ContextVar[ArtifactCache | None] = (
    contextvars.ContextVar("repro_artifact_cache", default=None)
)


def current_cache() -> ArtifactCache | None:
    """The ambient artifact cache, or ``None`` when none is installed."""
    return _CACHE.get()


@contextlib.contextmanager
def artifact_cache(
    cache: ArtifactCache | None = None,
) -> Iterator[ArtifactCache]:
    """Install ``cache`` (or a fresh memory-only one) as ambient.

    Sweeps, experiment runners and :class:`~repro.engine.Executor`
    pick up the ambient cache automatically; nested blocks shadow the
    outer cache.
    """
    installed = cache if cache is not None else ArtifactCache()
    token = _CACHE.set(installed)
    try:
        yield installed
    finally:
        _CACHE.reset(token)
