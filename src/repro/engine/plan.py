"""A :class:`Plan` composes stages into a validated execution graph.

The plan is a linear stage graph over a shared value namespace: each
stage consumes named values produced by earlier stages (or supplied as
initial values) and publishes its outputs back into the namespace.
Wiring is validated at construction, so a mis-ordered plan fails fast
instead of at execution time.

Plans also define the cache lineage: :meth:`Plan.artifact_key` chains
the dataset fingerprint with the stage fingerprints up to a given
stage, producing the content address under which that stage's output
artifact is stored (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.cache import artifact_key
from repro.engine.stage import Stage
from repro.exceptions import PipelineError

__all__ = ["Plan"]


class Plan:
    """An ordered, wiring-checked sequence of stages.

    Parameters
    ----------
    stages:
        The stages in execution order.
    initial:
        Names of the values the caller will supply to
        :meth:`~repro.engine.executor.Executor.execute` (e.g.
        ``("graph",)`` or ``("symmetrized", "ground_truth")``).
    name:
        Human label for traces and error messages.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        initial: Sequence[str] = ("graph",),
        name: str = "plan",
    ) -> None:
        self.stages: tuple[Stage, ...] = tuple(stages)
        self.initial: tuple[str, ...] = tuple(initial)
        self.name = name
        if not self.stages:
            raise PipelineError(f"plan {name!r} has no stages")
        available = set(self.initial)
        for i, stage in enumerate(self.stages):
            if not isinstance(stage, Stage):
                raise PipelineError(
                    f"plan {name!r} stage {i} is not a Stage: "
                    f"{stage!r}"
                )
            missing = [k for k in stage.inputs if k not in available]
            if missing:
                raise PipelineError(
                    f"plan {name!r} stage {i} ({stage.name!r}) needs "
                    f"{missing} but only {sorted(available)} are "
                    "available at that point"
                )
            available.update(stage.outputs)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def lineage(self, upto: int) -> list[str]:
        """Stage fingerprints from the input through stage ``upto``."""
        if not 0 <= upto < len(self.stages):
            raise PipelineError(
                f"stage index {upto} out of range for plan "
                f"{self.name!r} with {len(self.stages)} stages"
            )
        return [s.fingerprint() for s in self.stages[: upto + 1]]

    def artifact_key(
        self, dataset_sha: str, upto: int, mode: str = "strict"
    ) -> str:
        """Content address of stage ``upto``'s output artifact.

        Chains the dataset fingerprint with the fingerprints of every
        stage up to and including ``upto`` — so the key changes when
        the dataset, any upstream stage configuration, or the stage
        order changes, and is unchanged otherwise.
        """
        return artifact_key(
            dataset_sha, self.lineage(upto), mode=mode
        )

    def describe(self) -> list[dict[str, Any]]:
        """One JSON-friendly record per stage (for manifests/docs)."""
        return [
            {
                "stage": type(s).__name__,
                "name": s.name,
                "config": s.config(),
                "cacheable": s.cacheable,
                "fingerprint": s.fingerprint()[:16],
            }
            for s in self.stages
        ]

    def __repr__(self) -> str:
        chain = " -> ".join(s.name for s in self.stages)
        return f"Plan({self.name!r}: {chain})"
