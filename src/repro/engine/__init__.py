"""Stage-graph execution engine with a content-addressed artifact cache.

The paper's framework is explicitly staged — symmetrize (§3),
optionally prune (§3.5–3.6), then cluster (§4) and evaluate (§4.3) —
and its experiment grids re-run the cheap later stages many times over
the same expensive stage-1 artifact. This package factors that
structure out of the former ``SymmetrizeClusterPipeline.run`` monolith
into composable parts:

- :class:`~repro.engine.stage.Stage` — one transformation with
  declared inputs/outputs, a JSON-serializable config and a stable
  ``fingerprint()`` (:mod:`~repro.engine.stages` has the concrete
  symmetrize / prune / cluster / evaluate stages);
- :class:`~repro.engine.plan.Plan` — an ordered, wiring-checked
  composition of stages defining each artifact's cache lineage;
- :class:`~repro.engine.executor.Executor` — runs a plan with
  per-stage validation strictness, tracing spans, structured warning
  capture, timing and artifact caching;
- :class:`~repro.engine.cache.ArtifactCache` — memory + on-disk
  content-addressed artifact store, keyed on the dataset's sha256
  fingerprint plus the canonical config hash of the stage lineage,
  with an ambient installer (:func:`artifact_cache`) that sweeps and
  experiment runners pick up automatically.

The fault-tolerant runtime layers on top:

- :class:`~repro.engine.policy.Budget` /
  :class:`~repro.engine.policy.RetryPolicy` — per-stage and per-plan
  resource ceilings and bounded retry of transient failures with
  deterministic-jitter backoff;
- :class:`~repro.engine.journal.RunJournal` — a crash-safe
  write-ahead journal of completed stages and sweep points, with an
  ambient installer (:func:`run_journal`) mirroring the cache's;
  :class:`~repro.engine.journal.JournalReplay` feeds
  ``Executor(resume_from=...)`` and ``sweep_*(..., resume=...)`` so an
  interrupted run recomputes only its unfinished tail;
- :class:`~repro.engine.pool.WorkerPool` — a shared, crash-tolerant
  process pool with an ambient installer (:func:`worker_pool`) that
  sweep points and sharded kernels draw from together, with lost
  payloads re-executed in-process;
- :mod:`~repro.engine.chaos` — deterministic fault injection
  (:func:`inject_faults`) for proving the recovery paths work.

See ``docs/architecture.md`` for the full design and keying scheme,
and ``docs/robustness.md`` for the fault-tolerance contract.
"""

from repro.engine.cache import (
    ARTIFACT_KEY_VERSION,
    ArtifactCache,
    artifact_cache,
    artifact_key,
    canonical_json,
    config_hash,
    current_cache,
    default_cache_dir,
)
from repro.engine.executor import (
    EXECUTION_MODES,
    ExecutionResult,
    Executor,
    PipelineWarning,
    StageExecution,
    capture_stage_warnings,
)
from repro.engine.chaos import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    current_faults,
    inject_faults,
)
from repro.engine.journal import (
    JOURNAL_SCHEMA,
    JournalReplay,
    JournalTailer,
    RunJournal,
    current_journal,
    point_key,
    read_journal,
    run_journal,
)
from repro.engine.ambient import AmbientState, ambient_scope
from repro.engine.plan import Plan
from repro.engine.policy import Budget, BudgetMeter, RetryPolicy
from repro.engine.pool import WorkerPool, current_pool, worker_pool
from repro.engine.stage import Stage, StageContext
from repro.engine.stages import (
    ClusterStage,
    EvaluateStage,
    PruneStage,
    PruneToDegreeStage,
    SymmetrizeStage,
    ValidateInputStage,
    ValidateSymmetrizedStage,
)

__all__ = [
    # cache
    "ARTIFACT_KEY_VERSION",
    "ArtifactCache",
    "artifact_cache",
    "current_cache",
    "artifact_key",
    "config_hash",
    "canonical_json",
    "default_cache_dir",
    # ambient scope
    "AmbientState",
    "ambient_scope",
    # stage graph
    "Stage",
    "StageContext",
    "Plan",
    # executor
    "Executor",
    "ExecutionResult",
    "StageExecution",
    "PipelineWarning",
    "capture_stage_warnings",
    "EXECUTION_MODES",
    # concrete stages
    "ValidateInputStage",
    "ValidateSymmetrizedStage",
    "SymmetrizeStage",
    "PruneStage",
    "PruneToDegreeStage",
    "ClusterStage",
    "EvaluateStage",
    # policies
    "Budget",
    "BudgetMeter",
    "RetryPolicy",
    # worker pool
    "WorkerPool",
    "worker_pool",
    "current_pool",
    # journal / resume
    "JOURNAL_SCHEMA",
    "RunJournal",
    "JournalReplay",
    "JournalTailer",
    "run_journal",
    "current_journal",
    "read_journal",
    "point_key",
    # chaos harness
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "inject_faults",
    "current_faults",
]
