"""Execution budgets and retry policies for the fault-tolerant runtime.

The paper's headline grids (Tables 3–4, Figures 5–9) run the same
stage pipeline over many parameter points; one hub-heavy point — a
bibliometric product on a power-law graph can densify quadratically —
must not stall or OOM an entire sweep. This module provides the two
policy objects the :class:`~repro.engine.executor.Executor` enforces:

- :class:`Budget` — per-stage or per-plan ceilings on wall-clock time
  and allocated memory. Overruns raise a structured
  :class:`~repro.exceptions.BudgetExceeded` (strict mode); lenient
  sweep drivers degrade the point instead (``SweepPoint.failed``).
  Python cannot preempt a running stage, so wall budgets are enforced
  at the first check *after* the overrun — the guarantee is that no
  *further* work starts once a budget is spent.
- :class:`RetryPolicy` — bounded re-execution of transiently failed
  stages with exponential backoff and *deterministic* jitter: the
  jitter fraction is a hash of the retry token and attempt number, so
  two runs of the same plan sleep identically (reproducible traces)
  while different stages desynchronize.

Memory budgets are metered with :mod:`tracemalloc` (allocation peak
during the attempt), which tracks Python-level allocations including
NumPy buffers; it is started per-attempt only when a memory budget is
actually set, so unbudgeted runs pay nothing.
"""

from __future__ import annotations

import hashlib
import time
import tracemalloc
from dataclasses import dataclass

from repro.exceptions import BudgetExceeded, TransientError

__all__ = ["Budget", "RetryPolicy", "BudgetMeter"]


@dataclass(frozen=True)
class Budget:
    """Resource ceilings for one scope (a stage name or a whole plan).

    Attributes
    ----------
    wall_s:
        Wall-clock ceiling in seconds; ``None`` means unlimited.
    mem_bytes:
        Ceiling on the peak Python-level allocation delta during the
        scope, in bytes; ``None`` means unlimited (and disables the
        tracemalloc meter entirely).
    """

    wall_s: float | None = None
    mem_bytes: int | None = None

    @property
    def unlimited(self) -> bool:
        """Whether this budget constrains nothing."""
        return self.wall_s is None and self.mem_bytes is None

    def check_wall(self, scope: str, spent: float) -> None:
        """Raise :class:`BudgetExceeded` if ``spent`` overran the
        wall-clock ceiling."""
        if self.wall_s is not None and spent > self.wall_s:
            raise BudgetExceeded(scope, "wall_s", self.wall_s, spent)

    def check_mem(self, scope: str, peak_bytes: int) -> None:
        """Raise :class:`BudgetExceeded` if the allocation peak
        overran the memory ceiling."""
        if self.mem_bytes is not None and peak_bytes > self.mem_bytes:
            raise BudgetExceeded(
                scope, "mem_bytes", float(self.mem_bytes),
                float(peak_bytes),
            )


class BudgetMeter:
    """Meters one attempt of one scope against a :class:`Budget`.

    Usage::

        meter = BudgetMeter(budget, scope="symmetrize")
        with meter:
            ...  # the attempt
        meter.enforce()   # raises BudgetExceeded on overrun

    The memory meter uses :func:`tracemalloc.get_traced_memory`
    deltas when tracemalloc is already tracing (e.g. under the
    tracing layer's opt-in memory spans) and starts/stops its own
    trace otherwise.
    """

    def __init__(self, budget: Budget, scope: str) -> None:
        self.budget = budget
        self.scope = scope
        self.seconds = 0.0
        self.peak_bytes = 0
        self._t0 = 0.0
        self._own_trace = False
        self._baseline = 0

    def __enter__(self) -> "BudgetMeter":
        if self.budget.mem_bytes is not None:
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
                self._baseline = tracemalloc.get_traced_memory()[0]
            else:
                tracemalloc.start()
                self._own_trace = True
                self._baseline = 0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._t0
        if self.budget.mem_bytes is not None:
            _, peak = tracemalloc.get_traced_memory()
            self.peak_bytes = max(0, peak - self._baseline)
            if self._own_trace:
                tracemalloc.stop()

    def enforce(self) -> None:
        """Raise :class:`BudgetExceeded` if the metered attempt
        overran either ceiling (wall checked first)."""
        self.budget.check_wall(self.scope, self.seconds)
        self.budget.check_mem(self.scope, self.peak_bytes)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of transiently failed stages.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retries).
    backoff_s:
        Base delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per further retry (exponential backoff).
    max_backoff_s:
        Ceiling on any single delay.
    jitter:
        Fractional jitter band: the delay is scaled by a
        deterministic factor in ``[1 - jitter, 1 + jitter]`` derived
        from the retry token and attempt number (no global RNG state
        is consumed, and re-runs sleep identically).
    retryable:
        Exception classes worth retrying. Defaults to
        :class:`~repro.exceptions.TransientError` — deterministic
        failures (bad input, budget overruns) are never retried.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    retryable: tuple[type[BaseException], ...] = (TransientError,)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether to re-execute after ``exc`` on attempt ``attempt``
        (1-based)."""
        return attempt < self.max_attempts and isinstance(
            exc, self.retryable
        )

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before the retry following attempt ``attempt``.

        Exponential in the attempt number, capped at
        ``max_backoff_s``, with deterministic jitter: the fraction is
        the leading 32 bits of ``sha256(token:attempt)``, so the same
        (token, attempt) pair always sleeps the same amount while
        distinct stages spread out.
        """
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return base * (1.0 + self.jitter * (2.0 * fraction - 1.0))
