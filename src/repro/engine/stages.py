"""Concrete stages of the paper's pipeline.

These wrap the existing library operations — input validation,
symmetrization (§3), pruning (§3.5–3.6), clustering (§4) and Avg-F
evaluation (§4.3) — as :class:`~repro.engine.stage.Stage` nodes so
:class:`~repro.engine.plan.Plan` can compose them and
:class:`~repro.engine.executor.Executor` can run them with shared
validation, tracing, warning capture and artifact caching.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.common import GraphClusterer, get_clusterer
from repro.engine.stage import Stage, StageContext
from repro.eval.fmeasure import average_f_score
from repro.exceptions import ClusteringError
from repro.obs.metrics import metric_set
from repro.symmetrize.base import Symmetrization, get_symmetrization
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
)
from repro.validate.invariants import (
    repair_graph,
    validate_directed_graph,
    validate_undirected_graph,
)

__all__ = [
    "ValidateInputStage",
    "ValidateSymmetrizedStage",
    "SymmetrizeStage",
    "PruneStage",
    "PruneToDegreeStage",
    "ClusterStage",
    "EvaluateStage",
]


class ValidateInputStage(Stage):
    """Validate (strict) or repair (lenient) the directed input."""

    name = "validate"
    inputs = ("graph",)
    outputs = ("graph",)

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        graph = values["graph"]
        report = validate_directed_graph(graph.adjacency, level="full")
        if not report.ok:
            if ctx.strict:
                report.raise_errors()
            graph, repair_report = repair_graph(graph)
            repair_report.emit_warnings()
        report.emit_warnings()
        return {"graph": graph}


class ValidateSymmetrizedStage(Stage):
    """Validate a caller-supplied stage-1 artifact before stage 2."""

    name = "validate"
    inputs = ("symmetrized",)
    outputs = ("symmetrized",)

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        symmetrized = values["symmetrized"]
        report = validate_undirected_graph(
            symmetrized.adjacency, level="basic"
        )
        if not report.ok:
            if ctx.strict:
                report.raise_errors()
            symmetrized, repair_report = repair_graph(symmetrized)
            repair_report.emit_warnings()
        return {"symmetrized": symmetrized}


class SymmetrizeStage(Stage):
    """Stage 1: directed graph → undirected similarity graph (§3)."""

    name = "symmetrize"
    inputs = ("graph",)
    outputs = ("symmetrized",)
    cacheable = True
    perf_tag = "pipeline:symmetrize"

    def __init__(
        self,
        symmetrization: str | Symmetrization,
        threshold: float = 0.0,
    ) -> None:
        if isinstance(symmetrization, str):
            symmetrization = get_symmetrization(symmetrization)
        self.symmetrization = symmetrization
        self.threshold = float(threshold)

    def config(self) -> dict[str, Any]:
        return {
            "symmetrization": self.symmetrization.config(),
            "threshold": self.threshold,
        }

    def _tuned_supported(self) -> bool:
        """Whether the pruned fast path can serve a tuned run.

        ``apply_pruned`` is edge-for-edge identical to
        ``apply(threshold=)`` (the PR 1 differential), but only exists
        for numeric-discount degree-discounted symmetrizations at a
        positive threshold — everything else keeps the default path
        regardless of the tuning decision.
        """
        sym = self.symmetrization
        return (
            self.threshold > 0
            and callable(getattr(sym, "apply_pruned", None))
            and isinstance(getattr(sym, "alpha", None), (int, float))
            and not isinstance(getattr(sym, "alpha", None), bool)
            and isinstance(getattr(sym, "beta", None), (int, float))
            and not isinstance(getattr(sym, "beta", None), bool)
        )

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        decision = ctx.scratch.get("tuning")
        if decision is not None and self._tuned_supported():
            return {
                "symmetrized": self.symmetrization.apply_pruned(
                    values["graph"],
                    self.threshold,
                    backend=decision.backend,
                    block_size=decision.block_size,
                    n_jobs=decision.n_jobs,
                )
            }
        return {
            "symmetrized": self.symmetrization.apply(
                values["graph"], threshold=self.threshold
            )
        }

    def counters(
        self, values: dict[str, Any], outputs: dict[str, Any]
    ) -> dict[str, int]:
        return {
            "nnz_in": values["graph"].adjacency.nnz,
            "nnz_out": outputs["symmetrized"].adjacency.nnz,
        }


class PruneStage(Stage):
    """§3.5: drop similarity edges strictly below a threshold."""

    name = "prune"
    inputs = ("symmetrized",)
    outputs = ("symmetrized",)
    cacheable = True

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def config(self) -> dict[str, Any]:
        return {"threshold": self.threshold}

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        return {
            "symmetrized": prune_graph(
                values["symmetrized"], self.threshold
            )
        }


class PruneToDegreeStage(Stage):
    """§5.3.1: choose a density-matched threshold, then prune.

    Deterministic given the input graph (the sampling recipe uses a
    fixed default generator), so the stage is cacheable; the chosen
    threshold is published to ``ctx.scratch["chosen_threshold"]``.
    """

    name = "prune"
    inputs = ("symmetrized",)
    outputs = ("symmetrized",)
    cacheable = True

    def __init__(self, target_degree: float) -> None:
        self.target_degree = float(target_degree)

    def config(self) -> dict[str, Any]:
        return {"target_degree": self.target_degree}

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        symmetrized = values["symmetrized"]
        threshold = choose_threshold_for_degree(
            symmetrized, self.target_degree
        )
        ctx.scratch["chosen_threshold"] = threshold
        return {"symmetrized": prune_graph(symmetrized, threshold)}


class ClusterStage(Stage):
    """Stage 2: cluster the symmetrized graph (§4)."""

    name = "cluster"
    inputs = ("symmetrized",)
    outputs = ("clustering",)
    perf_tag = "pipeline:cluster"

    def __init__(
        self,
        clusterer: str | GraphClusterer,
        n_clusters: int | None = None,
    ) -> None:
        if isinstance(clusterer, str):
            clusterer = get_clusterer(clusterer)
        if not isinstance(clusterer, GraphClusterer):
            raise ClusteringError(
                "clusterer must be a name or GraphClusterer"
            )
        self.clusterer = clusterer
        self.n_clusters = n_clusters

    def config(self) -> dict[str, Any]:
        return {
            "clusterer": self.clusterer.config(),
            "n_clusters": self.n_clusters,
        }

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        return {
            "clustering": self.clusterer.cluster(
                values["symmetrized"], self.n_clusters
            )
        }

    def counters(
        self, values: dict[str, Any], outputs: dict[str, Any]
    ) -> dict[str, int]:
        return {
            "nnz_in": values["symmetrized"].adjacency.nnz,
            "n_clusters": outputs["clustering"].n_clusters,
        }


class EvaluateStage(Stage):
    """§4.3: Avg-F of the clustering against ground truth."""

    name = "evaluate"
    inputs = ("clustering", "ground_truth")
    outputs = ("average_f",)

    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        avg_f = average_f_score(
            values["clustering"], values["ground_truth"]
        )
        metric_set("average_f", avg_f)
        return {"average_f": avg_f}
