"""Supervised process workers for the service daemon.

``worker_mode="process"`` moves job execution out of the daemon's
address space: each job runs in a :class:`~repro.engine.pool.WorkerPool`
worker process, so a hard crash (segfault, OOM kill, ``os._exit``)
costs one worker, not the daemon. The supervisor closes the loop:

- **Crash detection.** A dead worker surfaces as a lost payload
  (the pool's ``BrokenProcessPool`` path); the supervisor's fallback
  returns a sentinel instead of re-running in-process, so the loss
  is observed rather than silently absorbed.
- **Retry.** Lost jobs are re-run under the manager's
  :class:`~repro.engine.RetryPolicy` (deterministic backoff keyed by
  job id). The chaos site ``service.worker`` arms exactly one
  worker death per triggered fault, which is how the quarantine
  tests stay deterministic.
- **Quarantine.** A job that kills ``max_crashes`` workers is
  abandoned with a :class:`~repro.exceptions.WorkerCrashError`
  marked ``quarantined`` — the manager records it in the terminal
  ``crashed`` state, which is never dedup-cached, so resubmitting
  the same spec runs fresh.

Workers execute the same :func:`~repro.service.jobs.execute_spec`
path as in-thread jobs, inside their own ambient scope, appending to
the same per-job journal file (O_APPEND keeps parent and worker
writes atomic), opening the graph zero-copy from its MmapCSR store.
Failures inside the worker come back as structured outcome dicts
(``code`` from the failure taxonomy, budget fields preserved) —
exceptions never cross the process boundary as opaque pickles.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.engine.chaos import chaos
from repro.engine.policy import RetryPolicy
from repro.engine.pool import WorkerPool
from repro.exceptions import WorkerCrashError
from repro.obs.metrics import MetricsRegistry

__all__ = ["WorkerSupervisor", "run_job_payload"]

#: Fallback sentinel marking a payload lost to a dead worker.
_LOST = "__repro_worker_lost__"


def _lost(_payload: dict[str, Any]) -> str:
    return _LOST


def run_job_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker-process entry point: execute one job payload.

    Returns an outcome dict — ``{"ok": True, result, warnings,
    manifest}`` or ``{"ok": False, error, error_type, code,
    budget?}`` — never raises (the process boundary gets data, not
    pickled tracebacks). Imports live inside the function: the
    module must stay light to import in freshly spawned workers, and
    a top-level import of :mod:`repro.service.jobs` would be
    circular.
    """
    if payload.get("chaos_exit"):
        os._exit(1)
    from repro.engine import (
        ArtifactCache,
        Budget,
        RetryPolicy as _RetryPolicy,
        RunJournal,
        ambient_scope,
    )
    from repro.exceptions import BudgetExceeded
    from repro.graph.digraph import DirectedGraph
    from repro.obs.metrics import MetricsRegistry as _Metrics
    from repro.obs.trace import Tracer
    from repro.service.jobs import (
        JobSpec,
        error_code_for,
        execute_spec,
    )

    try:
        spec = JobSpec.from_dict(dict(payload["spec"]))
        graph = DirectedGraph.from_mmcsr(
            payload["graph_path"], validate="none"
        )
        budget = (
            Budget(**payload["budget"])
            if payload.get("budget")
            else None
        )
        retry = (
            _RetryPolicy(**payload["retry"])
            if payload.get("retry")
            else None
        )
        cache = (
            ArtifactCache(directory=payload["cache_dir"])
            if payload.get("cache_dir")
            else ArtifactCache()
        )
        tracer = Tracer()
        job_metrics = _Metrics()
        journal = RunJournal(
            payload["journal_path"], run_id=payload["job_id"]
        )
        try:
            with ambient_scope(
                cache=cache,
                tracer=tracer,
                metrics=job_metrics,
                journal=journal,
                isolate=True,
            ):
                result, recorded, manifest = execute_spec(
                    spec,
                    graph,
                    dataset_sha=payload["dataset_sha"],
                    cache=cache,
                    budget=budget,
                    retry=retry,
                    tracer=tracer,
                    job_metrics=job_metrics,
                )
        finally:
            journal.close()
        return {
            "ok": True,
            "result": result,
            "warnings": recorded,
            "manifest": (
                manifest.as_dict() if manifest is not None else None
            ),
        }
    except BudgetExceeded as exc:
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "code": "budget_exceeded",
            "budget": {
                "scope": exc.scope,
                "resource": exc.resource,
                "limit": exc.limit,
                "spent": exc.spent,
            },
        }
    except Exception as exc:  # noqa: BLE001 - process boundary
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "code": error_code_for(exc),
        }


class WorkerSupervisor:
    """Runs job payloads in worker processes with crash recovery.

    Parameters
    ----------
    max_workers:
        Size of the underlying :class:`WorkerPool`.
    retry:
        Backoff policy between worker-crash re-runs (the default
        engine policy when omitted).
    max_crashes:
        Worker deaths a single job may cause before quarantine.
    metrics:
        Counter registry (``service_worker_crashes_total``).
    """

    def __init__(
        self,
        max_workers: int = 2,
        retry: RetryPolicy | None = None,
        max_crashes: int = 2,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pool = WorkerPool(max_workers)
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_crashes = max_crashes
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )

    def run_job(
        self, payload: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Execute ``payload`` in a worker, supervising for death.

        Returns the worker's outcome dict, or ``None`` when no
        process pool can be created in this environment (the caller
        runs its in-thread path instead). Raises a ``quarantined``
        :class:`WorkerCrashError` after ``max_crashes`` deaths.
        """
        job_id = str(payload.get("job_id", "?"))
        crashes = 0
        while True:
            # Flag faults are decided in the parent: contextvar
            # plans do not cross the process boundary, so the worker
            # is told to die via the payload (allpairs precedent).
            flag = chaos("service.worker")
            attempt_payload = dict(
                payload,
                chaos_exit=(
                    flag is not None and flag.kind == "kill_worker"
                ),
            )
            results = self.pool.run(
                run_job_payload, [attempt_payload], fallback=_lost
            )
            if results is None:
                return None
            outcome = results[0]
            if outcome != _LOST:
                return outcome
            crashes += 1
            self.metrics.inc("service_worker_crashes_total")
            if crashes >= self.max_crashes:
                error = WorkerCrashError(
                    f"job {job_id} crashed {crashes} worker "
                    f"process(es); quarantined"
                )
                error.quarantined = True  # type: ignore[attr-defined]
                raise error
            time.sleep(
                min(self.retry.delay(crashes, token=job_id), 2.0)
            )

    def close(self) -> None:
        self.pool.close()

    def __repr__(self) -> str:
        return (
            f"WorkerSupervisor(pool={self.pool!r}, "
            f"max_crashes={self.max_crashes})"
        )
