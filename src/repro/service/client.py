"""Stdlib-only hardened client for the clustering service daemon.

One :class:`http.client.HTTPConnection` per request (the server is
``Connection: close``), JSON in/out, typed errors re-raised from the
server's structured error bodies. Thread-safe by construction — every
call opens its own connection — which is exactly what the multi-client
integration test leans on.

Hardening (the PR 10 contract):

- **Split timeouts.** ``connect_timeout`` bounds the TCP handshake,
  ``timeout`` the read — a daemon mid-restart fails fast instead of
  eating the whole read budget.
- **Retry with deterministic backoff.** Connection failures and 503
  overload responses are retried under an
  :class:`~repro.engine.RetryPolicy` (exponential, deterministic
  jitter keyed by ``method path``), honouring the server's
  ``Retry-After`` when it is longer than the computed backoff. Only
  idempotent requests retry — every endpoint here is, *including*
  ``POST /jobs``: the job's content address makes resubmission a
  dedup hit, so a lost response costs a cheap rider join, never a
  duplicate execution. ``POST /shutdown`` is the one exception.
- **Typed errors.** The server's machine-readable ``code`` field maps
  back to the real exceptions — ``budget_exceeded`` →
  :class:`~repro.exceptions.BudgetExceeded` (structured fields
  intact), ``overloaded`` →
  :class:`~repro.exceptions.ServiceOverloaded`, ``worker_crashed`` →
  :class:`~repro.exceptions.WorkerCrashError`, ``transient`` →
  :class:`~repro.exceptions.TransientError` — with
  :class:`ServiceHTTPError` only for anything unmapped.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from repro.engine.policy import RetryPolicy
from repro.exceptions import (
    BudgetExceeded,
    ReproError,
    ServiceOverloaded,
    TransientError,
    WorkerCrashError,
)
from repro.graph.digraph import DirectedGraph
from repro.service.jobs import ServiceError

__all__ = ["ServiceClient", "ServiceHTTPError"]

#: Default retry policy for the hardened transport: 5 attempts,
#: 0.2 s base backoff doubling to a 5 s ceiling, 25% jitter.
_DEFAULT_RETRY = RetryPolicy(
    max_attempts=5,
    backoff_s=0.2,
    backoff_factor=2.0,
    max_backoff_s=5.0,
    jitter=0.25,
)


class ServiceHTTPError(ReproError):
    """A non-2xx response that doesn't map to a typed library error."""

    def __init__(self, status: int, message: str, error_type: str) -> None:
        super().__init__(f"HTTP {status} ({error_type}): {message}")
        self.status = status
        self.error_type = error_type


def _raise_for(status: int, payload: dict[str, Any]) -> None:
    message = str(payload.get("error", "unknown error"))
    error_type = str(payload.get("error_type", ""))
    code = str(payload.get("code", ""))
    if code == "budget_exceeded" or error_type == "BudgetExceeded":
        if {"scope", "resource", "limit", "spent"} <= payload.keys():
            raise BudgetExceeded(
                str(payload["scope"]),
                str(payload["resource"]),
                float(payload["limit"]),
                float(payload["spent"]),
            )
        raise ServiceHTTPError(status, message, error_type or "BudgetExceeded")
    if code == "overloaded":
        raise ServiceOverloaded(
            message,
            retry_after_s=float(payload.get("retry_after_s", 1.0)),
        )
    if code == "worker_crashed":
        raise WorkerCrashError(message)
    if code == "transient":
        raise TransientError(message)
    if (
        code in ("invalid_request", "not_found", "conflict")
        or error_type == "ServiceError"
        or status in (400, 404, 409)
    ):
        raise ServiceError(message)
    raise ServiceHTTPError(status, message, error_type or "HTTPError")


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer`.

    Parameters
    ----------
    host, port:
        The daemon's listen address.
    client:
        Tenant identity sent with every job submission — the unit of
        the server's per-client wall-clock budget.
    timeout:
        Read timeout per request, seconds.
    connect_timeout:
        TCP connect timeout, seconds (defaults to ``min(timeout,
        5)``).
    retry:
        Backoff policy for connection failures and 503 sheds. Pass
        ``RetryPolicy(max_attempts=1)`` to disable retries.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: str = "anonymous",
        timeout: float = 60.0,
        connect_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else min(timeout, 5.0)
        )
        self.retry = retry if retry is not None else _DEFAULT_RETRY

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _once(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        """One connect / request / read cycle; returns
        ``(status, lowercase headers, parsed body)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            conn.connect()
            if conn.sock is not None:
                # Connected: the remaining budget is the read one.
                conn.sock.settimeout(self.timeout)
            body = None
            headers = {"X-Repro-Client": self.client}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = {
                name.lower(): value
                for name, value in response.getheaders()
            }
        finally:
            conn.close()
        try:
            parsed = json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceHTTPError(
                response.status, f"unparseable body: {exc}", "BadBody"
            ) from exc
        return response.status, response_headers, parsed

    def _backoff(
        self,
        attempt: int,
        token: str,
        retry_after: str | None,
    ) -> None:
        delay = self.retry.delay(attempt, token=token)
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        time.sleep(delay)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        token = f"{method} {path}"
        attempt = 0
        while True:
            attempt += 1
            retryable = (
                idempotent and attempt < self.retry.max_attempts
            )
            try:
                status, headers, parsed = self._once(
                    method, path, payload
                )
            except (OSError, http.client.HTTPException) as exc:
                # Refused / reset / timed out: the daemon may be
                # mid-restart. Idempotent requests back off and
                # resubmit (content addressing dedups job posts).
                if retryable:
                    self._backoff(attempt, token, None)
                    continue
                raise TransientError(
                    f"{token} to {self.host}:{self.port} failed "
                    f"after {attempt} attempt(s): {exc}"
                ) from exc
            if status == 503 and retryable:
                self._backoff(
                    attempt, token, headers.get("retry-after")
                )
                continue
            if status >= 400:
                _raise_for(status, parsed)
            return parsed

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def ready(self) -> dict[str, Any]:
        """``GET /readyz`` — raises while the daemon is draining."""
        return self._request("GET", "/readyz", idempotent=False)

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def register_graph(
        self, name: str, graph: DirectedGraph
    ) -> dict[str, Any]:
        """Upload ``graph`` under ``name`` (idempotent per content)."""
        return self._request(
            "POST",
            "/graphs",
            {
                "name": name,
                "n_nodes": graph.n_nodes,
                "edges": [
                    [src, dst, weight]
                    for src, dst, weight in graph.edges()
                ],
            },
        )

    def graphs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/graphs")["graphs"]

    def submit(self, **spec: Any) -> dict[str, Any]:
        """Submit a job; keyword arguments are the JobSpec fields
        (``kind``, ``graph``, ``method``, ``clusterer``, ...).

        Returns ``{"job_id", "key", "state", "deduped"}``. Raises
        :class:`~repro.exceptions.BudgetExceeded` when this client's
        budget is exhausted and
        :class:`~repro.exceptions.ServiceOverloaded` when the server
        sheds and retries are exhausted. Safe to retry: the job's
        content address makes an identical resubmission join the
        existing job instead of spawning a duplicate.
        """
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        """Fetch one job; ``wait`` blocks server-side until it
        finishes (or the wait elapses)."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._request("GET", path)

    def result(
        self, job_id: str, timeout: float = 60.0
    ) -> dict[str, Any]:
        """Block until ``job_id`` finishes and return its result.

        Raises :class:`~repro.exceptions.ReproError` subclasses
        reconstructed from the job's recorded failure code.
        """
        job = self.job(job_id, wait=timeout)
        if job["state"] in ("queued", "running"):
            raise ServiceHTTPError(
                504,
                f"job {job_id} still {job['state']} after {timeout}s",
                "Timeout",
            )
        if job["state"] in ("failed", "crashed"):
            raise self._job_failure(job_id, job)
        return job["result"]

    @staticmethod
    def _job_failure(job_id: str, job: dict[str, Any]) -> ReproError:
        """Typed exception for a terminally failed job record."""
        code = job.get("error_code") or ""
        error_type = job.get("error_type")
        message = (
            f"job {job_id} {job['state']} "
            f"({error_type}): {job.get('error')}"
        )
        if code == "budget_exceeded" or error_type == "BudgetExceeded":
            return ServiceHTTPError(429, message, "BudgetExceeded")
        if code == "worker_crashed" or job["state"] == "crashed":
            return WorkerCrashError(message)
        if code == "transient":
            return TransientError(message)
        return ServiceError(message)

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's journal records as they are written.

        Yields parsed NDJSON records, ending with the synthetic
        ``{"type": "job_end", ...}`` sentinel.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "GET",
                f"/jobs/{job_id}/events",
                headers={"X-Repro-Client": self.client},
            )
            response = conn.getresponse()
            if response.status >= 400:
                _raise_for(
                    response.status,
                    json.loads(response.read().decode() or "{}"),
                )
            for raw_line in response:
                line = raw_line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit. Never retried — a lost
        response is indistinguishable from a completed shutdown."""
        return self._request("POST", "/shutdown", idempotent=False)
