"""Stdlib-only client for the clustering service daemon.

One :class:`http.client.HTTPConnection` per request (the server is
``Connection: close``), JSON in/out, typed errors re-raised from the
server's structured error bodies. Thread-safe by construction — every
call opens its own connection — which is exactly what the multi-client
integration test leans on.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator

from repro.exceptions import ReproError
from repro.graph.digraph import DirectedGraph
from repro.service.jobs import ServiceError

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(ReproError):
    """A non-2xx response that doesn't map to a typed library error."""

    def __init__(self, status: int, message: str, error_type: str) -> None:
        super().__init__(f"HTTP {status} ({error_type}): {message}")
        self.status = status
        self.error_type = error_type


def _raise_for(status: int, payload: dict[str, Any]) -> None:
    message = str(payload.get("error", "unknown error"))
    error_type = str(payload.get("error_type", ""))
    if status == 429 or error_type == "BudgetExceeded":
        # The structured fields don't survive the wire; re-raise with
        # the server's rendered message as the scope.
        raise ServiceHTTPError(status, message, error_type or "BudgetExceeded")
    if error_type == "ServiceError" or status in (400, 404, 409):
        raise ServiceError(message)
    raise ServiceHTTPError(status, message, error_type or "HTTPError")


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer`.

    Parameters
    ----------
    host, port:
        The daemon's listen address.
    client:
        Tenant identity sent with every job submission — the unit of
        the server's per-client wall-clock budget.
    timeout:
        Socket timeout per request, seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: str = "anonymous",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {"X-Repro-Client": self.client}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            parsed = json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceHTTPError(
                response.status, f"unparseable body: {exc}", "BadBody"
            ) from exc
        if response.status >= 400:
            _raise_for(response.status, parsed)
        return parsed

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def register_graph(
        self, name: str, graph: DirectedGraph
    ) -> dict[str, Any]:
        """Upload ``graph`` under ``name`` (idempotent per content)."""
        return self._request(
            "POST",
            "/graphs",
            {
                "name": name,
                "n_nodes": graph.n_nodes,
                "edges": [
                    [src, dst, weight]
                    for src, dst, weight in graph.edges()
                ],
            },
        )

    def graphs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/graphs")["graphs"]

    def submit(self, **spec: Any) -> dict[str, Any]:
        """Submit a job; keyword arguments are the JobSpec fields
        (``kind``, ``graph``, ``method``, ``clusterer``, ...).

        Returns ``{"job_id", "key", "state", "deduped"}``. Raises
        :class:`ServiceHTTPError` with ``status=429`` when this
        client's budget is exhausted.
        """
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        """Fetch one job; ``wait`` blocks server-side until it
        finishes (or the wait elapses)."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._request("GET", path)

    def result(
        self, job_id: str, timeout: float = 60.0
    ) -> dict[str, Any]:
        """Block until ``job_id`` finishes and return its result.

        Raises :class:`~repro.exceptions.ReproError` subclasses
        reconstructed from the job's recorded failure.
        """
        job = self.job(job_id, wait=timeout)
        if job["state"] not in ("done", "failed"):
            raise ServiceHTTPError(
                504,
                f"job {job_id} still {job['state']} after {timeout}s",
                "Timeout",
            )
        if job["state"] == "failed":
            if job.get("error_type") == "BudgetExceeded":
                raise ServiceHTTPError(
                    429, job.get("error") or "", "BudgetExceeded"
                )
            raise ServiceError(
                f"job {job_id} failed "
                f"({job.get('error_type')}): {job.get('error')}"
            )
        return job["result"]

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's journal records as they are written.

        Yields parsed NDJSON records, ending with the synthetic
        ``{"type": "job_end", ...}`` sentinel.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "GET",
                f"/jobs/{job_id}/events",
                headers={"X-Repro-Client": self.client},
            )
            response = conn.getresponse()
            if response.status >= 400:
                _raise_for(
                    response.status,
                    json.loads(response.read().decode() or "{}"),
                )
            for raw_line in response:
                line = raw_line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/shutdown")
