"""Clustering-as-a-service: a long-lived daemon over the library.

The CLI runs one pipeline per process, which re-pays graph loading and
stage-1 symmetrization on every invocation. ``repro serve`` instead
keeps registered graphs and one shared
:class:`~repro.engine.ArtifactCache` resident in a single process and
accepts ``symmetrize`` / ``cluster`` / ``sweep`` jobs over HTTP/JSON
from many concurrent clients:

- identical requests are deduplicated through the same
  content-addressed :func:`~repro.engine.point_key` lineage the sweep
  journal uses — N clients posting the same job share one execution;
- per-client wall-clock budgets reuse the PR 5
  :class:`~repro.engine.Budget` machinery (429 on exhaustion);
- every job runs in an isolated :func:`~repro.engine.ambient_scope`
  on a bounded worker pool, journaling progress to its own
  write-ahead :class:`~repro.engine.RunJournal`, which
  ``GET /jobs/<id>/events`` streams live as NDJSON.

:class:`~repro.service.jobs.JobManager` is the HTTP-free core,
:class:`~repro.service.server.ServiceServer` the asyncio front end,
and :class:`~repro.service.client.ServiceClient` a stdlib-only
client. See ``docs/service.md`` for the protocol.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobManager,
    JobSpec,
    RegisteredGraph,
    ServiceError,
)
from repro.service.server import ServiceServer, serve

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobSpec",
    "RegisteredGraph",
    "ServiceError",
    "ServiceServer",
    "ServiceClient",
    "serve",
]
