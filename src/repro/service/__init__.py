"""Clustering-as-a-service: a durable, crash-safe daemon over the library.

The CLI runs one pipeline per process, which re-pays graph loading and
stage-1 symmetrization on every invocation. ``repro serve`` instead
keeps registered graphs and one shared
:class:`~repro.engine.ArtifactCache` resident in a single process and
accepts ``symmetrize`` / ``cluster`` / ``sweep`` jobs over HTTP/JSON
from many concurrent clients:

- identical requests are deduplicated through the same
  content-addressed :func:`~repro.engine.point_key` lineage the sweep
  journal uses — N clients posting the same job share one execution;
- per-client wall-clock budgets reuse the PR 5
  :class:`~repro.engine.Budget` machinery (429 on exhaustion);
- every job runs in an isolated :func:`~repro.engine.ambient_scope`
  on a bounded worker pool, journaling progress to its own
  write-ahead :class:`~repro.engine.RunJournal`, which
  ``GET /jobs/<id>/events`` streams live as NDJSON;
- with ``--state-dir``, a :class:`~repro.service.store.ServiceStore`
  persists graphs (MmapCSR), results (content-addressed JSON) and
  job tombstones (a write-ahead service journal), so a SIGKILLed
  daemon recovers its state byte-identically and re-runs exactly the
  incomplete jobs;
- ``worker_mode="process"`` supervises jobs in
  :class:`~repro.engine.pool.WorkerPool` workers — a crashing job
  costs a worker, not the daemon, and is quarantined (``crashed``)
  after repeated deaths;
- admission control sheds load (503 + ``Retry-After``) at a bounded
  queue depth, and the hardened :class:`ServiceClient` rides it out
  with deterministic exponential backoff.

:class:`~repro.service.jobs.JobManager` is the HTTP-free core,
:class:`~repro.service.server.ServiceServer` the asyncio front end,
:class:`~repro.service.store.ServiceStore` the durability layer,
:class:`~repro.service.supervisor.WorkerSupervisor` the process-worker
harness, and :class:`~repro.service.client.ServiceClient` a
stdlib-only client. See ``docs/service.md`` for the protocol and
deployment notes.
"""

from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobManager,
    JobSpec,
    RegisteredGraph,
    ServiceError,
    error_code_for,
    execute_spec,
)
from repro.service.server import ServiceServer, serve
from repro.service.store import ServiceStore
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobSpec",
    "RegisteredGraph",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceServer",
    "ServiceClient",
    "ServiceStore",
    "WorkerSupervisor",
    "error_code_for",
    "execute_spec",
    "serve",
]
