"""Durable state for the clustering service daemon.

:class:`ServiceStore` is the persistence layer behind
``repro serve --state-dir``: everything the daemon must not lose
across a SIGKILL lives under one directory:

.. code-block:: text

    <state_dir>/
        service.journal.jsonl     write-ahead service journal (WAL)
        graphs/<name>/adjacency/  MmapCSR store per registered graph
        results/<k0k1>/<key>.json content-addressed job results
        jobs/<job_id>/journal.jsonl   per-job journals (JobManager)
        manifests.jsonl               run manifests (JobManager)

Three invariants make recovery exact:

- **WAL before publish.** A ``graph_registered`` record (name + the
  *original* in-RAM fingerprint) is journaled before the MmapCSR
  directory is published. The fingerprint hashes index bytes, so a
  recovered (int32-index) store would re-hash differently — recovery
  trusts the recorded sha, keeping job content addresses stable
  across restarts.
- **Atomic publishes.** Graphs commit via MmapCSR's tmp-dir +
  ``os.replace`` protocol; results via tmp-file + ``os.replace``. A
  crash mid-write leaves either the old state or nothing — never a
  torn entry (torn graph dirs raise ``StorageError`` and are skipped
  on recovery).
- **Tombstone ordering.** ``job_start`` is journaled at submission,
  the result file is published on completion, and ``job_end`` is
  journaled last. A job is *incomplete* (and re-run on recovery) iff
  it has a start, no end, and no result file — so a crash between
  result publish and ``job_end`` re-serves the published result
  instead of recomputing.

Degradation: any ``OSError`` on a write path (ENOSPC included) flips
the store read-only instead of killing the daemon — jobs keep
executing from memory, persistence resumes on restart. A disk-space
watchdog (:meth:`check_disk`) does the same pre-emptively.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine.chaos import chaos
from repro.engine.journal import RunJournal, read_journal
from repro.exceptions import ExecutionWarning, ReproError, StorageError
from repro.linalg.mmcsr import MmapCSR
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.digraph import DirectedGraph

__all__ = ["STORE_SCHEMA", "ServiceStore"]

#: Schema marker written into every persisted result payload.
STORE_SCHEMA = "repro-service-store/v1"

#: Default free-space floor before the watchdog flips read-only.
_MIN_FREE_BYTES = 32 * 1024 * 1024


class ServiceStore:
    """Crash-safe persistence for graphs, results and job tombstones.

    Parameters
    ----------
    state_dir:
        Root of the durable state (created if missing).
    metrics:
        Counter registry (typically the :class:`JobManager`'s); a
        private one is created when omitted.
    min_free_bytes:
        Disk-space watchdog threshold for :meth:`check_disk`.
    """

    def __init__(
        self,
        state_dir: str | Path,
        metrics: MetricsRegistry | None = None,
        min_free_bytes: int = _MIN_FREE_BYTES,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.graphs_dir = self.state_dir / "graphs"
        self.results_dir = self.state_dir / "results"
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.min_free_bytes = min_free_bytes
        self.read_only = False
        self.journal = RunJournal(
            self.state_dir / "service.journal.jsonl",
            run_id="service",
        )

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def _degrade(self, why: str) -> None:
        if not self.read_only:
            self.read_only = True
            self.metrics.inc("service_store_degraded_total")
            self.metrics.set("service_store_read_only", 1.0)
            warnings.warn(
                ExecutionWarning(
                    f"service store {self.state_dir} degraded to "
                    f"read-only: {why}",
                    code="store_degraded",
                ),
                stacklevel=3,
            )

    def check_disk(self) -> bool:
        """Disk-space watchdog: flip read-only when free space drops
        below ``min_free_bytes``. Returns ``True`` while writable."""
        if self.read_only:
            return False
        try:
            free = shutil.disk_usage(self.state_dir).free
        except OSError:
            return not self.read_only
        if free < self.min_free_bytes:
            self._degrade(
                f"free disk {free} B below floor "
                f"{self.min_free_bytes} B"
            )
        return not self.read_only

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------
    def graph_dir(self, name: str) -> Path:
        return self.graphs_dir / name / "adjacency"

    def put_graph(
        self, name: str, graph: "DirectedGraph", sha: str
    ) -> Path | None:
        """Persist a registered graph (WAL record, then atomic
        MmapCSR publish). Returns the store path, or ``None`` when
        the store is read-only / the write failed."""
        if self.read_only:
            return None
        directory = self.graph_dir(name)
        if directory.exists():
            return directory
        try:
            chaos("service.store_put")
            self.journal.append(
                {
                    "type": "graph_registered",
                    "name": name,
                    "sha": sha,
                    "created_unix": time.time(),
                }
            )
            MmapCSR.from_scipy(graph.adjacency, directory)
        except OSError as exc:
            self._degrade(f"graph put {name!r} failed: {exc}")
            return None
        return directory

    def load_graphs(
        self,
    ) -> list[tuple[str, "DirectedGraph", str, float]]:
        """Recover every intact persisted graph.

        Returns ``(name, graph, sha, created_unix)`` tuples; the sha
        is the WAL-recorded original fingerprint (see module notes).
        Torn or sha-less directories are skipped, not fatal.
        """
        from repro.graph.digraph import DirectedGraph

        recorded: dict[str, dict[str, Any]] = {}
        for record in self._wal_records():
            if record.get("type") == "graph_registered":
                recorded[str(record.get("name"))] = record
        out: list[tuple[str, "DirectedGraph", str, float]] = []
        if not self.graphs_dir.is_dir():
            return out
        for entry in sorted(self.graphs_dir.iterdir()):
            record = recorded.get(entry.name)
            if record is None or not isinstance(
                record.get("sha"), str
            ):
                continue  # published without a WAL record: unusable
            try:
                store = MmapCSR.open(entry / "adjacency")
                graph = DirectedGraph.from_mmcsr(
                    store, validate="none"
                )
            except (StorageError, ReproError, OSError):
                continue  # torn publish; the WAL-first crash window
            out.append(
                (
                    entry.name,
                    graph,
                    str(record["sha"]),
                    float(record.get("created_unix", 0.0)),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Results (content-addressed by job key)
    # ------------------------------------------------------------------
    def result_path(self, key: str) -> Path:
        return self.results_dir / key[:2] / f"{key}.json"

    def put_result(self, job: Any) -> bool:
        """Atomically publish a finished job's result payload.

        Keyed by the job's content address; returns ``False`` (and
        degrades to read-only) on any write failure. Must be called
        *before* :meth:`record_job_end` — see the tombstone-ordering
        invariant.
        """
        if self.read_only or not self.check_disk():
            return False
        path = self.result_path(job.key)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        payload = {
            "schema": STORE_SCHEMA,
            "key": job.key,
            "job_id": job.job_id,
            "clients": list(job.clients),
            "spec": job.spec.as_dict(),
            "state": job.state,
            "result": job.result,
            "warnings": job.warnings,
            "error": job.error,
            "error_type": job.error_type,
            "created_unix": job.created_unix,
            "started_unix": job.started_unix,
            "finished_unix": job.finished_unix,
        }
        try:
            chaos("service.store_put")
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            self._degrade(f"result put {job.key} failed: {exc}")
            return False
        return True

    def load_results(self) -> dict[str, dict[str, Any]]:
        """Every intact persisted result, keyed by content address."""
        out: dict[str, dict[str, Any]] = {}
        if not self.results_dir.is_dir():
            return out
        for path in sorted(self.results_dir.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if payload.get("schema") != STORE_SCHEMA:
                continue
            key = payload.get("key")
            if isinstance(key, str) and key:
                out[key] = payload
        return out

    def evict_result(self, key: str) -> None:
        with_suppress = self.result_path(key)
        try:
            with_suppress.unlink(missing_ok=True)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Job tombstones (the WAL)
    # ------------------------------------------------------------------
    def record_job_start(self, job: Any) -> None:
        if self.read_only:
            return
        self.journal.append(
            {
                "type": "job_start",
                "job_id": job.job_id,
                "key": job.key,
                "client": job.clients[0] if job.clients else None,
                "spec": job.spec.as_dict(),
                "created_unix": job.created_unix,
            }
        )

    def record_job_end(self, job: Any) -> None:
        if self.read_only:
            return
        self.journal.append(
            {
                "type": "job_end",
                "job_id": job.job_id,
                "key": job.key,
                "state": job.state,
            }
        )

    def record_eviction(self, keys: list[str]) -> None:
        if self.read_only or not keys:
            return
        self.journal.append(
            {
                "type": "jobs_evicted",
                "keys": list(keys),
                "count": len(keys),
            }
        )

    def incomplete_jobs(self) -> list[dict[str, Any]]:
        """``job_start`` tombstones with no ``job_end`` *and* no
        published result — the jobs a recovering daemon must re-run.

        Replays the WAL in order, so a key that was started, ended,
        evicted and re-started resolves to its latest state.
        """
        latest: dict[str, dict[str, Any]] = {}
        ended: set[str] = set()
        for record in self._wal_records():
            kind = record.get("type")
            key = record.get("key")
            if kind == "job_start" and isinstance(key, str):
                latest[key] = record
                ended.discard(key)
            elif kind == "job_end" and isinstance(key, str):
                ended.add(key)
            elif kind == "jobs_evicted":
                for evicted in record.get("keys", ()):
                    latest.pop(evicted, None)
                    ended.discard(evicted)
        return [
            record
            for key, record in latest.items()
            if key not in ended
            and not self.result_path(key).exists()
        ]

    def _wal_records(self) -> list[dict[str, Any]]:
        path = self.journal.path
        if not path.exists():
            return []
        try:
            return read_journal(path)
        except ReproError:
            # A corrupt WAL interior costs recovery detail, never
            # the daemon itself: fall back to best-effort line scan.
            records: list[dict[str, Any]] = []
            for line in path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
            return records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        return {
            "state_dir": str(self.state_dir),
            "read_only": self.read_only,
        }

    def close(self) -> None:
        self.journal.close()

    def __repr__(self) -> str:
        mode = "read-only" if self.read_only else "read-write"
        return f"ServiceStore({str(self.state_dir)!r}, {mode})"
