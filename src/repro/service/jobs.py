"""Graph registry and job manager for the clustering service daemon.

This module is the daemon's brain, independent of HTTP: it owns the
registered graphs, the shared :class:`~repro.engine.ArtifactCache`, a
bounded thread pool executing jobs, and the bookkeeping that makes
many concurrent clients cheap:

- **Content-addressed dedup.** A job's identity is the same
  :func:`~repro.engine.point_key` lineage the sweep journal uses:
  sha256 of (dataset fingerprint, stage-lineage fingerprints, request
  parameters, mode). Two clients posting byte-identical requests get
  the *same* job — one execution, both receive the result — and a
  request identical to an already-finished job is served from that
  job's recorded result without recomputing anything.
- **Per-client budgets.** PR 5's :class:`~repro.engine.Budget`
  machinery, applied per tenant: each client has a cumulative
  wall-clock allowance; a submission from an exhausted client raises
  :class:`~repro.exceptions.BudgetExceeded` (the HTTP layer maps it
  to 429). Deduplicated riders are not charged — shared computation
  is the point of the content addressing.
- **Admission control.** A bounded queue: once ``max_queue_depth``
  jobs are waiting, further *new* submissions are shed with
  :class:`~repro.exceptions.ServiceOverloaded` (HTTP 503 +
  ``Retry-After``; ``service_shed_total`` counts them). Dedup riders
  always board — they cost nothing.
- **Durability.** With a :class:`~repro.service.store.ServiceStore`
  attached, graphs persist as MmapCSR stores, finished results as
  content-addressed JSON, and submissions as write-ahead tombstones.
  A manager constructed over the same state dir after a SIGKILL
  recovers all of it and re-runs exactly the incomplete jobs.
- **Supervised execution.** ``worker_mode="process"`` runs each job
  in a :class:`~repro.engine.pool.WorkerPool` worker under a
  supervisor: a crashed worker is detected, the job retried under
  the manager's :class:`~repro.engine.RetryPolicy`, and a job that
  kills two workers is quarantined in the terminal ``crashed`` state
  (never dedup-cached, so a later resubmission runs fresh).
- **Per-job isolation and provenance.** Every job executes inside an
  isolated :func:`~repro.engine.ambient_scope` carrying the shared
  cache, a fresh tracer + metrics registry, and the job's own
  write-ahead journal (``<data_dir>/jobs/<job_id>/journal.jsonl``) —
  the journal the ``/jobs/<id>/events`` endpoint tails — and appends
  a :class:`~repro.obs.RunManifest` to ``<data_dir>/manifests.jsonl``.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import contextvars
import hashlib
import threading
import time
import warnings as _warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.cluster.common import get_clusterer
from repro.engine import (
    ArtifactCache,
    Budget,
    ClusterStage,
    Executor,
    Plan,
    RetryPolicy,
    RunJournal,
    SymmetrizeStage,
    ValidateInputStage,
    ambient_scope,
    point_key,
)
from repro.exceptions import (
    BudgetExceeded,
    ExecutionWarning,
    ReproError,
    ServiceOverloaded,
    TransientError,
    WorkerCrashError,
)
from repro.graph.digraph import DirectedGraph
from repro.obs.manifest import (
    RunManifest,
    append_manifest,
    collect_environment,
    fingerprint_graph,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.pipeline.sweep import aggregate_average_f, sweep_n_clusters
from repro.service.store import ServiceStore
from repro.symmetrize.base import get_symmetrization

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "ServiceError",
    "JobSpec",
    "RegisteredGraph",
    "Job",
    "JobManager",
    "error_code_for",
    "execute_spec",
]

#: Request kinds the daemon executes.
JOB_KINDS = ("symmetrize", "cluster", "sweep")

#: Lifecycle of a job. ``queued -> running -> done | failed |
#: crashed`` (``crashed`` = quarantined after repeated worker death).
JOB_STATES = ("queued", "running", "done", "failed", "crashed")

#: Terminal states that never dedup-cache: a retry gets a fresh job.
_RETRYABLE_TERMINAL = ("failed", "crashed")


class ServiceError(ReproError):
    """A malformed or unserviceable request (HTTP 400/404/409)."""


def error_code_for(exc: BaseException) -> str:
    """Machine-readable error code for the failure taxonomy.

    These are the ``code`` values the HTTP layer puts in structured
    error bodies and :class:`~repro.service.ServiceClient` maps back
    to typed exceptions.
    """
    if isinstance(exc, BudgetExceeded):
        return "budget_exceeded"
    if isinstance(exc, WorkerCrashError):
        return "worker_crashed"
    if isinstance(exc, ServiceOverloaded):
        return "overloaded"
    if isinstance(exc, TransientError):
        return "transient"
    if isinstance(exc, ServiceError):
        return "invalid_request"
    if isinstance(exc, ReproError):
        return "invalid_request"
    return "internal"


def _labels_sha(labels: np.ndarray) -> str:
    """Content hash of a labels vector, for byte-identity checks."""
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One validated job request.

    ``counts`` applies to ``kind="sweep"`` only; ``n_clusters`` to
    ``cluster`` and ``sweep``-less kinds. The spec is hashable into
    the job's content address, so every field must stay
    JSON-canonical.
    """

    kind: str
    graph: str
    method: str = "degree_discounted"
    clusterer: str = "mlrmcl"
    threshold: float = 0.0
    n_clusters: int | None = None
    counts: tuple[int, ...] | None = None
    mode: str = "strict"
    tuning: str | None = None

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        """Validate a request body into a spec (raises 400-shaped
        :class:`ServiceError` on anything malformed)."""
        if not isinstance(payload, dict):
            raise ServiceError("job request body must be an object")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; expected one of "
                f"{JOB_KINDS}"
            )
        graph = payload.get("graph")
        if not isinstance(graph, str) or not graph:
            raise ServiceError(
                "job request needs 'graph': a registered graph name"
            )
        mode = payload.get("mode", "strict")
        if mode not in ("strict", "lenient"):
            raise ServiceError(f"unknown mode {mode!r}")
        counts = payload.get("counts")
        if kind == "sweep":
            if not counts or not isinstance(counts, (list, tuple)):
                raise ServiceError(
                    "sweep jobs need 'counts': a list of cluster "
                    "counts"
                )
            counts = tuple(int(k) for k in counts)
        elif counts is not None:
            raise ServiceError(
                f"'counts' is only valid for sweep jobs, not {kind!r}"
            )
        tuning = payload.get("tuning")
        if tuning not in (None, "auto"):
            raise ServiceError(
                f"unknown tuning {tuning!r}; expected 'auto' or null"
            )
        n_clusters = payload.get("n_clusters")
        try:
            return cls(
                kind=kind,
                graph=graph,
                method=str(payload.get("method", "degree_discounted")),
                clusterer=str(payload.get("clusterer", "mlrmcl")),
                threshold=float(payload.get("threshold", 0.0)),
                n_clusters=(
                    int(n_clusters) if n_clusters is not None else None
                ),
                counts=counts,
                mode=mode,
                tuning=tuning,
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job request: {exc}") from exc

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "graph": self.graph,
            "method": self.method,
            "clusterer": self.clusterer,
            "threshold": self.threshold,
            "n_clusters": self.n_clusters,
            "counts": list(self.counts) if self.counts else None,
            "mode": self.mode,
            "tuning": self.tuning,
        }


@dataclass(frozen=True)
class RegisteredGraph:
    """A directed graph the daemon holds in memory for jobs.

    ``store_path`` points at the persisted MmapCSR directory when a
    :class:`ServiceStore` (or process-worker spill) backs the graph —
    it is what lets worker processes open the adjacency zero-copy
    instead of unpickling it over the pipe.
    """

    name: str
    graph: DirectedGraph
    sha: str
    created_unix: float
    store_path: str | None = None

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "sha": self.sha,
            "n_nodes": self.graph.n_nodes,
            "n_edges": self.graph.n_edges,
            "created_unix": self.created_unix,
            "persisted": self.store_path is not None,
        }


class Job:
    """One submitted (possibly shared) unit of work."""

    def __init__(
        self,
        job_id: str,
        key: str,
        spec: JobSpec,
        client: str,
        journal_path: Path,
    ) -> None:
        self.job_id = job_id
        self.key = key
        self.spec = spec
        self.clients = [client]
        self.journal_path = journal_path
        self.state = "queued"
        self.created_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.error_type: str | None = None
        self.error_code: str | None = None
        self.warnings: list[dict[str, str]] = []
        self.recovered = False
        self.done = threading.Event()

    @property
    def seconds(self) -> float | None:
        if self.started_unix is None or self.finished_unix is None:
            return None
        return self.finished_unix - self.started_unix

    def summary(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.spec.kind,
            "graph": self.spec.graph,
            "state": self.state,
            "clients": list(self.clients),
            "created_unix": self.created_unix,
            "seconds": self.seconds,
            "error": self.error,
            "error_type": self.error_type,
            "error_code": self.error_code,
            "recovered": self.recovered,
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.summary(),
            "spec": self.spec.as_dict(),
            "journal": str(self.journal_path),
            "warnings": self.warnings,
            "result": self.result,
        }


# ---------------------------------------------------------------------------
# Spec execution (shared by worker threads and worker processes)
# ---------------------------------------------------------------------------


def execute_spec(
    spec: JobSpec,
    graph: DirectedGraph,
    *,
    dataset_sha: str,
    cache: ArtifactCache | None = None,
    budget: Budget | None = None,
    retry: RetryPolicy | None = None,
    tracer: Tracer | None = None,
    job_metrics: MetricsRegistry | None = None,
) -> tuple[dict[str, Any], list[dict[str, str]], RunManifest | None]:
    """Run one job spec against ``graph``; the one execution path
    both the in-thread and the supervised-process workers share.

    Returns ``(result_payload, warnings, manifest)``. The caller is
    responsible for installing the ambient scope (cache / tracer /
    metrics / journal) around this call — in process-worker mode that
    happens inside the worker, with the journal appending to the same
    file the parent's event streams tail.
    """
    tracer = tracer if tracer is not None else Tracer()
    job_metrics = (
        job_metrics if job_metrics is not None else MetricsRegistry()
    )
    if spec.kind == "cluster":
        return _execute_cluster(spec, graph, budget, retry)
    if spec.kind == "symmetrize":
        return _execute_symmetrize(
            spec, graph, dataset_sha, cache, budget, retry,
            tracer, job_metrics,
        )
    return _execute_sweep(
        spec, graph, cache, budget, retry, tracer, job_metrics
    )


def _execute_cluster(
    spec: JobSpec,
    graph: DirectedGraph,
    budget: Budget | None,
    retry: RetryPolicy | None,
) -> tuple[dict[str, Any], list[dict[str, str]], RunManifest | None]:
    pipe = SymmetrizeClusterPipeline(
        spec.method,
        spec.clusterer,
        threshold=spec.threshold,
        mode=spec.mode,
        tuning=spec.tuning,
    )
    result = pipe.run(
        graph,
        n_clusters=spec.n_clusters,
        plan_budget=budget,
        retry=retry,
    )
    recorded = [
        {"stage": w.stage, "code": w.code, "message": w.message}
        for w in result.warnings
    ]
    labels = result.clustering.labels
    payload = {
        "kind": "cluster",
        "labels": [int(v) for v in labels],
        "labels_sha256": _labels_sha(labels),
        "n_clusters": int(result.clustering.n_clusters),
        "n_edges": int(result.symmetrized.n_edges),
        "symmetrize_seconds": result.symmetrize_seconds,
        "cluster_seconds": result.cluster_seconds,
        "cache": result.cache,
    }
    return payload, recorded, result.manifest


def _execute_symmetrize(
    spec: JobSpec,
    graph: DirectedGraph,
    dataset_sha: str,
    cache: ArtifactCache | None,
    budget: Budget | None,
    retry: RetryPolicy | None,
    tracer: Tracer,
    job_metrics: MetricsRegistry,
) -> tuple[dict[str, Any], list[dict[str, str]], RunManifest | None]:
    stages = [
        ValidateInputStage(),
        SymmetrizeStage(
            get_symmetrization(spec.method),
            threshold=spec.threshold,
        ),
    ]
    plan = Plan(
        stages,
        initial=("graph",),
        name=f"service.symmetrize.{spec.method}",
    )
    executor = Executor(
        mode=spec.mode,
        cache=cache,
        plan_budget=budget,
        retry=retry,
    )
    execution = executor.execute(
        plan, {"graph": graph}, dataset_sha=dataset_sha
    )
    recorded = [
        {"stage": w.stage, "code": w.code, "message": w.message}
        for w in execution.warnings
    ]
    symmetrized = execution.values["symmetrized"]
    payload = {
        "kind": "symmetrize",
        "n_nodes": int(symmetrized.n_nodes),
        "n_edges": int(symmetrized.n_edges),
        "result_sha": fingerprint_graph(symmetrized)["sha256"],
        "seconds": execution.seconds("symmetrize"),
        "cache": execution.cache_summary(),
    }
    manifest = _spec_manifest(
        spec, graph, recorded, tracer, job_metrics,
        timings={
            "symmetrize_seconds": execution.seconds("symmetrize")
        },
        cache=execution.cache_summary(),
    )
    return payload, recorded, manifest


def _execute_sweep(
    spec: JobSpec,
    graph: DirectedGraph,
    cache: ArtifactCache | None,
    budget: Budget | None,
    retry: RetryPolicy | None,
    tracer: Tracer,
    job_metrics: MetricsRegistry,
) -> tuple[dict[str, Any], list[dict[str, str]], RunManifest | None]:
    points = sweep_n_clusters(
        graph,
        spec.method,
        spec.clusterer,
        list(spec.counts or ()),
        threshold=spec.threshold,
        cache=cache,
        mode=spec.mode,
        retry=retry,
        plan_budget=budget,
    )
    payload = {
        "kind": "sweep",
        "points": [
            {
                "parameter": point.parameter,
                "n_clusters": int(point.n_clusters),
                "average_f": point.average_f,
                "n_edges": int(point.n_edges),
                "cluster_seconds": point.cluster_seconds,
                "cache_hit": point.cache_hit,
                "failed": point.failed,
                "error": point.error,
            }
            for point in points
        ],
        "mean_average_f": aggregate_average_f(points),
    }
    manifest = _spec_manifest(
        spec, graph, [], tracer, job_metrics,
        timings={
            "sweep_seconds": sum(
                p.cluster_seconds for p in points
            )
        },
        cache={
            "hits": sum(1 for p in points if p.cache_hit),
            "misses": sum(
                1 for p in points if p.cache_hit is False
            ),
        },
    )
    return payload, [], manifest


def _spec_manifest(
    spec: JobSpec,
    graph: DirectedGraph,
    recorded_warnings: list[dict[str, str]],
    tracer: Tracer,
    job_metrics: MetricsRegistry,
    timings: dict[str, float],
    cache: dict[str, Any],
) -> RunManifest:
    return RunManifest(
        kind="service",
        name=f"{spec.kind}.{spec.method}",
        config=spec.as_dict(),
        dataset=fingerprint_graph(graph),
        environment=collect_environment(),
        warnings=recorded_warnings,
        trace=tracer.as_dict().get("spans", []),
        metrics=job_metrics.as_dict(),
        cache=cache,
        timings=timings,
    )


class JobManager:
    """Owns graphs, the cache, and a bounded pool of job workers.

    Parameters
    ----------
    data_dir:
        Daemon state root: graph uploads, per-job journals and the
        manifest run log all live under it.
    cache:
        The shared artifact cache (memory-only by default; pass one
        with a ``directory`` for a persistent disk tier).
    max_workers:
        Bound on concurrently *executing* jobs; further submissions
        queue (up to ``max_queue_depth``).
    job_budget:
        Per-job :class:`Budget` ceiling (wall / memory), enforced by
        the engine as the plan budget of every execution — including
        inside worker processes in ``worker_mode="process"``.
    client_wall_s:
        Cumulative per-client wall-clock allowance across all their
        completed jobs; ``None`` disables tenant budgeting. Clients
        over the allowance are denied with
        :class:`~repro.exceptions.BudgetExceeded`.
    retry:
        :class:`RetryPolicy` applied to every job's stages, and by
        the supervisor to worker-crash re-runs.
    metrics:
        Server-level registry for service counters (jobs, dedup
        hits, denials, sheds, evictions). A private one is created
        when omitted.
    store:
        A :class:`~repro.service.store.ServiceStore` for durable
        state. When given, the manager recovers graphs, results and
        incomplete jobs from it at construction, and persists new
        ones as it goes. ``data_dir`` should be the store's state
        dir so journals and manifests live under the same root.
    worker_mode:
        ``"thread"`` (default) executes jobs on the manager's thread
        pool; ``"process"`` adds a supervised
        :class:`~repro.engine.pool.WorkerPool` so a hard-crashing
        job cannot take the daemon down. Falls back to threads when
        the sandbox forbids process pools.
    max_queue_depth:
        Admission bound: new submissions beyond this many *queued*
        jobs are shed with :class:`ServiceOverloaded` (HTTP 503).
        ``None`` disables shedding.
    shed_retry_after_s:
        ``Retry-After`` hint attached to shed responses.
    max_jobs / max_job_age_s:
        Retention bounds for finished jobs: after every completion
        (and on :meth:`evict_jobs`) terminal jobs beyond the count /
        older than the age are evicted — journals, persisted results
        and in-memory records alike (``service_jobs_evicted_total``).
    """

    def __init__(
        self,
        data_dir: str | Path,
        cache: ArtifactCache | None = None,
        max_workers: int = 2,
        job_budget: Budget | None = None,
        client_wall_s: float | None = None,
        retry: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        store: ServiceStore | None = None,
        worker_mode: str = "thread",
        max_queue_depth: int | None = None,
        shed_retry_after_s: float = 1.0,
        max_jobs: int | None = None,
        max_job_age_s: float | None = None,
    ) -> None:
        if worker_mode not in ("thread", "process"):
            raise ServiceError(
                f"unknown worker_mode {worker_mode!r}; expected "
                "'thread' or 'process'"
            )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.cache = cache if cache is not None else ArtifactCache()
        self.job_budget = job_budget
        self.client_wall_s = client_wall_s
        self.retry = retry
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.store = store
        if store is not None:
            store.metrics = self.metrics
        self.worker_mode = worker_mode
        self.max_queue_depth = max_queue_depth
        self.shed_retry_after_s = shed_retry_after_s
        self.max_jobs = max_jobs
        self.max_job_age_s = max_job_age_s
        self.manifest_log = self.data_dir / "manifests.jsonl"
        self._graphs: dict[str, RegisteredGraph] = {}
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._client_spent: dict[str, float] = {}
        self._futures: dict[str, concurrent.futures.Future] = {}
        self._lock = threading.RLock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="repro-job",
        )
        self._closed = False
        self._supervisor = None
        if worker_mode == "process":
            from repro.service.supervisor import WorkerSupervisor

            self._supervisor = WorkerSupervisor(
                max_workers=max_workers,
                retry=retry,
                metrics=self.metrics,
            )
        if store is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild state from the store: graphs, finished results,
        then re-submit exactly the incomplete jobs."""
        assert self.store is not None
        for name, graph, sha, created in self.store.load_graphs():
            self._graphs[name] = RegisteredGraph(
                name=name,
                graph=graph,
                sha=sha,
                created_unix=created or time.time(),
                store_path=str(self.store.graph_dir(name)),
            )
            self.metrics.inc("service_graphs_recovered_total")
        for key, payload in self.store.load_results().items():
            job = self._rebuild_job(key, payload)
            if job is None:
                continue
            self._jobs[job.job_id] = job
            self._by_key[key] = job
            self.metrics.inc("service_results_recovered_total")
        for record in self.store.incomplete_jobs():
            try:
                spec = JobSpec.from_dict(dict(record.get("spec") or {}))
            except ServiceError:
                continue
            if spec.graph not in self._graphs:
                continue  # its graph never made it to disk
            client = str(record.get("client") or "recovered")
            with contextlib.suppress(ReproError):
                job, deduped = self.submit(
                    spec, client, admission=False
                )
                if not deduped:
                    self.metrics.inc("service_jobs_rerun_total")
                    _warnings.warn(
                        ExecutionWarning(
                            f"re-running incomplete job "
                            f"{job.job_id} from its tombstone",
                            code="job_rerun",
                        ),
                        stacklevel=2,
                    )

    def _rebuild_job(
        self, key: str, payload: dict[str, Any]
    ) -> Job | None:
        try:
            spec = JobSpec.from_dict(dict(payload.get("spec") or {}))
        except ServiceError:
            return None
        job_id = str(payload.get("job_id") or f"job-{key[:16]}")
        clients = payload.get("clients") or ["recovered"]
        job = Job(
            job_id=job_id,
            key=key,
            spec=spec,
            client=str(clients[0]),
            journal_path=(
                self.data_dir / "jobs" / job_id / "journal.jsonl"
            ),
        )
        job.clients = [str(c) for c in clients]
        job.state = str(payload.get("state") or "done")
        job.result = payload.get("result")
        job.warnings = list(payload.get("warnings") or [])
        job.error = payload.get("error")
        job.error_type = payload.get("error_type")
        job.created_unix = float(
            payload.get("created_unix") or time.time()
        )
        job.started_unix = payload.get("started_unix")
        job.finished_unix = payload.get("finished_unix")
        job.recovered = True
        job.done.set()
        return job

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register_graph(
        self, name: str, graph: DirectedGraph
    ) -> RegisteredGraph:
        """Register ``graph`` under ``name`` (idempotent for the same
        content; a different graph under a taken name is a conflict).

        With a store attached the graph is journaled and persisted
        (atomic MmapCSR publish) before the registration returns, so
        a recovering daemon serves it without a re-upload.
        """
        if not name or "/" in name:
            raise ServiceError(
                f"invalid graph name {name!r} (must be non-empty, "
                "no '/')"
            )
        sha = fingerprint_graph(graph)["sha256"]
        with self._lock:
            existing = self._graphs.get(name)
            if existing is not None:
                if existing.sha == sha:
                    return existing
                raise ServiceError(
                    f"graph name {name!r} is already registered with "
                    f"different content (sha {existing.sha})"
                )
            store_path: str | None = None
            if self.store is not None:
                persisted = self.store.put_graph(name, graph, sha)
                store_path = (
                    str(persisted) if persisted is not None else None
                )
            elif self._supervisor is not None:
                store_path = self._spill_graph(name, graph)
            registered = RegisteredGraph(
                name=name,
                graph=graph,
                sha=sha,
                created_unix=time.time(),
                store_path=store_path,
            )
            self._graphs[name] = registered
            self.metrics.inc("service_graphs_registered_total")
        return registered

    def _spill_graph(
        self, name: str, graph: DirectedGraph
    ) -> str | None:
        """Process workers open graphs from disk; without a durable
        store, spill the adjacency under the data dir."""
        from repro.linalg.mmcsr import MmapCSR

        directory = self.data_dir / "graphs" / name / "adjacency"
        try:
            if not directory.exists():
                MmapCSR.from_scipy(graph.adjacency, directory)
        except OSError:
            return None
        return str(directory)

    def graph(self, name: str) -> RegisteredGraph:
        with self._lock:
            try:
                return self._graphs[name]
            except KeyError:
                raise ServiceError(
                    f"no graph registered under {name!r}"
                ) from None

    def graphs(self) -> list[dict[str, Any]]:
        with self._lock:
            return [g.summary() for g in self._graphs.values()]

    # ------------------------------------------------------------------
    # Job identity
    # ------------------------------------------------------------------
    def _lineage_stages(self, spec: JobSpec) -> list[Any]:
        """The stage lineage a spec's execution runs through, used
        for its content address (and submit-time validation of the
        method / clusterer names)."""
        symmetrization = get_symmetrization(spec.method)
        stages: list[Any] = [
            ValidateInputStage(),
            SymmetrizeStage(
                symmetrization, threshold=spec.threshold
            ),
        ]
        if spec.kind == "cluster":
            stages.append(
                ClusterStage(
                    get_clusterer(spec.clusterer), spec.n_clusters
                )
            )
        elif spec.kind == "sweep":
            # Counts are swept per point; they enter the key as the
            # parameter, and the clusterer via one representative
            # stage fingerprint.
            stages.append(
                ClusterStage(get_clusterer(spec.clusterer), None)
            )
        return stages

    def job_key(self, spec: JobSpec) -> str:
        """The content address two identical requests share."""
        registered = self.graph(spec.graph)
        lineage = [
            stage.fingerprint()
            for stage in self._lineage_stages(spec)
        ]
        return point_key(
            registered.sha, lineage, spec.as_dict(), spec.mode
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _check_client_budget(self, client: str) -> None:
        if self.client_wall_s is None:
            return
        spent = self._client_spent.get(client, 0.0)
        if spent >= self.client_wall_s:
            self.metrics.inc("service_budget_denials_total")
            raise BudgetExceeded(
                f"client:{client}", "wall_s", self.client_wall_s,
                spent,
            )

    def queue_depth(self) -> int:
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state == "queued"
            )

    def submit(
        self,
        spec: JobSpec,
        client: str,
        admission: bool = True,
    ) -> tuple[Job, bool]:
        """Submit (or join) a job; returns ``(job, deduped)``.

        Raises :class:`BudgetExceeded` when ``client`` has exhausted
        its wall-clock allowance, :class:`ServiceOverloaded` when
        the queue is at its admission bound (dedup riders are exempt
        — joining an existing job admits no new work), and
        :class:`ServiceError` for unknown graphs / methods /
        clusterers. ``admission=False`` bypasses shedding (recovery
        re-runs must always board).
        """
        with self._lock:
            if self._closed:
                raise ServiceError("server is shutting down")
            self._check_client_budget(client)
            key = self.job_key(spec)
            existing = self._by_key.get(key)
            if (
                existing is not None
                and existing.state not in _RETRYABLE_TERMINAL
            ):
                # Identical request: share the computation (or its
                # recorded result). The rider is not charged.
                if client not in existing.clients:
                    existing.clients.append(client)
                self.metrics.inc("service_dedup_hits_total")
                return existing, True
            if (
                admission
                and self.max_queue_depth is not None
                and sum(
                    1
                    for j in self._jobs.values()
                    if j.state == "queued"
                )
                >= self.max_queue_depth
            ):
                self.metrics.inc("service_shed_total")
                raise ServiceOverloaded(
                    f"queue depth at bound "
                    f"{self.max_queue_depth}; shedding",
                    retry_after_s=self.shed_retry_after_s,
                )
            job = Job(
                job_id=f"job-{key[:16]}",
                key=key,
                spec=spec,
                client=client,
                journal_path=(
                    self.data_dir
                    / "jobs"
                    / f"job-{key[:16]}"
                    / "journal.jsonl"
                ),
            )
            self._jobs[job.job_id] = job
            self._by_key[key] = job
            self.metrics.inc("service_jobs_submitted_total")
            if self.store is not None:
                self.store.record_job_start(job)
            # Copy the submitting context so ambient state installed
            # by the caller (fault plans above all) reaches the
            # worker thread — executor threads otherwise start from
            # an empty context.
            context = contextvars.copy_context()
            self._futures[job.job_id] = self._executor.submit(
                context.run, self._execute, job, client
            )
            return job, False

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(
                    f"no job with id {job_id!r}"
                ) from None

    def jobs(self) -> list[dict[str, Any]]:
        with self._lock:
            return [j.summary() for j in self._jobs.values()]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "graphs": len(self._graphs),
                "jobs": states,
                "queue_depth": sum(
                    1
                    for j in self._jobs.values()
                    if j.state == "queued"
                ),
                "worker_mode": self.worker_mode,
                "store": (
                    self.store.status()
                    if self.store is not None
                    else None
                ),
                "clients": {
                    client: {
                        "wall_s_spent": spent,
                        "wall_s_budget": self.client_wall_s,
                    }
                    for client, spent in self._client_spent.items()
                },
                "metrics": self.metrics.as_dict(),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    # Eviction (GC of finished jobs)
    # ------------------------------------------------------------------
    def evict_jobs(self, now: float | None = None) -> int:
        """Apply the retention bounds to terminal jobs.

        Oldest-finished-first: jobs older than ``max_job_age_s`` go,
        then the oldest beyond ``max_jobs``. Evicts the in-memory
        record, the persisted result, and the job's journal
        directory. Returns the eviction count.
        """
        if self.max_jobs is None and self.max_job_age_s is None:
            return 0
        now = time.time() if now is None else now
        with self._lock:
            terminal = sorted(
                (
                    job
                    for job in self._jobs.values()
                    if job.done.is_set()
                    and job.state in ("done", "failed", "crashed")
                ),
                key=lambda j: j.finished_unix or j.created_unix,
            )
            evict: list[Job] = []
            if self.max_job_age_s is not None:
                evict.extend(
                    job
                    for job in terminal
                    if now - (job.finished_unix or job.created_unix)
                    > self.max_job_age_s
                )
            if self.max_jobs is not None:
                keep = [j for j in terminal if j not in evict]
                overflow = len(keep) - self.max_jobs
                if overflow > 0:
                    evict.extend(keep[:overflow])
            for job in evict:
                self._jobs.pop(job.job_id, None)
                if self._by_key.get(job.key) is job:
                    self._by_key.pop(job.key, None)
            evicted_keys = [job.key for job in evict]
        for job in evict:
            self._evict_job_files(job)
        if evict:
            self.metrics.inc(
                "service_jobs_evicted_total", len(evict)
            )
            if self.store is not None:
                self.store.record_eviction(evicted_keys)
        return len(evict)

    def _evict_job_files(self, job: Job) -> None:
        import shutil

        if self.store is not None:
            self.store.evict_result(job.key)
        with contextlib.suppress(OSError):
            shutil.rmtree(job.journal_path.parent)

    # ------------------------------------------------------------------
    # Execution (worker threads, optionally worker processes)
    # ------------------------------------------------------------------
    def _execute(self, job: Job, client: str) -> None:
        job.state = "running"
        job.started_unix = time.time()
        journal = RunJournal(job.journal_path, run_id=job.job_id)
        tracer = Tracer()
        job_metrics = MetricsRegistry()
        manifest: RunManifest | None = None
        try:
            registered = self.graph(job.spec.graph)
            self.metrics.inc("service_job_executions_total")
            supervised: dict[str, Any] | None = None
            if (
                self._supervisor is not None
                and registered.store_path is not None
            ):
                supervised = self._supervisor.run_job(
                    self._worker_payload(job, registered)
                )
            if supervised is not None:
                result, recorded, manifest = self._absorb_worker(
                    job, supervised
                )
            else:
                # In-thread path: thread mode, sandboxes without
                # process pools, or graphs that never hit disk.
                # Isolated scope: the job sees the shared cache, its
                # own tracer/metrics/journal, and nothing from
                # whatever ran on this pooled thread before it.
                with ambient_scope(
                    cache=self.cache,
                    tracer=tracer,
                    metrics=job_metrics,
                    journal=journal,
                    isolate=True,
                ):
                    result, recorded, manifest = execute_spec(
                        job.spec,
                        registered.graph,
                        dataset_sha=registered.sha,
                        cache=self.cache,
                        budget=self.job_budget,
                        retry=self.retry,
                        tracer=tracer,
                        job_metrics=job_metrics,
                    )
            job.warnings = recorded
            journal.finish("complete")
            job.result = result
            job.state = "done"
            self.metrics.inc("service_jobs_completed_total")
            if self.store is not None:
                # Publish the result *before* the job_end tombstone:
                # a crash in between re-serves the published bytes
                # instead of re-running (see the store invariants).
                self.store.put_result(job)
        except Exception as exc:  # noqa: BLE001 - job boundary
            journal.finish("failed")
            job.error = str(exc)
            job.error_type = getattr(
                exc, "remote_type", None
            ) or type(exc).__name__
            job.error_code = getattr(
                exc, "remote_code", None
            ) or error_code_for(exc)
            job.state = (
                "crashed"
                if isinstance(exc, WorkerCrashError)
                and getattr(exc, "quarantined", False)
                else "failed"
            )
            self.metrics.inc("service_jobs_failed_total")
            if job.state == "crashed":
                self.metrics.inc("service_jobs_crashed_total")
            if job.error_code == "budget_exceeded":
                self.metrics.inc("service_job_budget_overruns_total")
        finally:
            journal.close()
            job.finished_unix = time.time()
            with self._lock:
                self._client_spent[client] = self._client_spent.get(
                    client, 0.0
                ) + (job.finished_unix - job.started_unix)
                self._futures.pop(job.job_id, None)
            if self.store is not None:
                self.store.record_job_end(job)
            if manifest is not None:
                manifest.job = {
                    "job_id": job.job_id,
                    "key": job.key,
                    "clients": list(job.clients),
                    "worker_mode": self.worker_mode,
                }
                try:
                    append_manifest(manifest, self.manifest_log)
                except OSError:
                    self.metrics.inc(
                        "service_manifest_write_failures_total"
                    )
            job.done.set()
            with contextlib.suppress(Exception):
                self.evict_jobs()

    def _worker_payload(
        self, job: Job, registered: RegisteredGraph
    ) -> dict[str, Any]:
        budget = self.job_budget
        retry = self.retry
        return {
            "job_id": job.job_id,
            "graph_path": registered.store_path,
            "dataset_sha": registered.sha,
            "spec": job.spec.as_dict(),
            "journal_path": str(job.journal_path),
            "cache_dir": (
                str(self.cache.directory)
                if self.cache.directory is not None
                else None
            ),
            "budget": (
                {
                    "wall_s": budget.wall_s,
                    "mem_bytes": budget.mem_bytes,
                }
                if budget is not None
                else None
            ),
            "retry": (
                {
                    "max_attempts": retry.max_attempts,
                    "backoff_s": retry.backoff_s,
                    "backoff_factor": retry.backoff_factor,
                    "max_backoff_s": retry.max_backoff_s,
                    "jitter": retry.jitter,
                }
                if retry is not None
                else None
            ),
        }

    def _absorb_worker(
        self, job: Job, outcome: dict[str, Any]
    ) -> tuple[
        dict[str, Any], list[dict[str, str]], RunManifest | None
    ]:
        """Translate a worker process's outcome dict back into the
        in-thread execution contract (result or typed raise)."""
        if outcome.get("ok"):
            manifest = None
            if outcome.get("manifest") is not None:
                with contextlib.suppress(ReproError, KeyError):
                    manifest = RunManifest.from_dict(
                        outcome["manifest"]
                    )
            return (
                outcome.get("result") or {},
                list(outcome.get("warnings") or []),
                manifest,
            )
        code = outcome.get("code") or "internal"
        message = str(outcome.get("error") or "worker failure")
        if code == "budget_exceeded" and outcome.get("budget"):
            fields = outcome["budget"]
            raise BudgetExceeded(
                str(fields.get("scope", "job")),
                str(fields.get("resource", "wall_s")),
                float(fields.get("limit", 0.0)),
                float(fields.get("spent", 0.0)),
            )
        error: ReproError
        if code == "transient":
            error = TransientError(message)
        elif code == "worker_crashed":
            error = WorkerCrashError(message)
        else:
            error = ServiceError(message)
        error.remote_type = outcome.get("error_type")  # type: ignore[attr-defined]
        error.remote_code = code  # type: ignore[attr-defined]
        raise error

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> bool:
        """Stop accepting jobs and drain the running ones.

        Queued-but-unstarted jobs are cancelled (they stay
        ``queued`` with an error note); running jobs get up to
        ``timeout`` seconds to finish. Returns ``True`` on a clean
        drain.
        """
        with self._lock:
            self._closed = True
            pending = dict(self._futures)
        for job_id, future in pending.items():
            if future.cancel():
                job = self._jobs.get(job_id)
                if job is not None:
                    job.state = "failed"
                    job.error = "cancelled at shutdown"
                    job.error_type = "Cancelled"
                    job.error_code = "shutting_down"
                    job.done.set()
        done, not_done = concurrent.futures.wait(
            [f for f in pending.values() if not f.cancelled()],
            timeout=timeout,
        )
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._supervisor is not None:
            self._supervisor.close()
        if self.store is not None:
            self.store.close()
        return not not_done
