"""Graph registry and job manager for the clustering service daemon.

This module is the daemon's brain, independent of HTTP: it owns the
registered graphs, the shared :class:`~repro.engine.ArtifactCache`, a
bounded thread pool executing jobs, and the bookkeeping that makes
many concurrent clients cheap:

- **Content-addressed dedup.** A job's identity is the same
  :func:`~repro.engine.point_key` lineage the sweep journal uses:
  sha256 of (dataset fingerprint, stage-lineage fingerprints, request
  parameters, mode). Two clients posting byte-identical requests get
  the *same* job — one execution, both receive the result — and a
  request identical to an already-finished job is served from that
  job's recorded result without recomputing anything.
- **Per-client budgets.** PR 5's :class:`~repro.engine.Budget`
  machinery, applied per tenant: each client has a cumulative
  wall-clock allowance; a submission from an exhausted client raises
  :class:`~repro.exceptions.BudgetExceeded` (the HTTP layer maps it
  to 429). Deduplicated riders are not charged — shared computation
  is the point of the content addressing.
- **Per-job isolation.** Every job executes inside an isolated
  :func:`~repro.engine.ambient_scope` carrying the shared cache, a
  fresh tracer + metrics registry, and the job's own write-ahead
  journal (``<data_dir>/jobs/<job_id>/journal.jsonl``) — the journal
  the ``/jobs/<id>/events`` endpoint tails. Nothing ambient leaks
  between jobs that reuse a pooled worker thread.
- **Per-job provenance.** Each job appends a
  :class:`~repro.obs.RunManifest` (with a ``job`` section keyed by
  job id) to ``<data_dir>/manifests.jsonl``.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.cluster.common import get_clusterer
from repro.engine import (
    ArtifactCache,
    Budget,
    ClusterStage,
    Executor,
    Plan,
    RetryPolicy,
    RunJournal,
    SymmetrizeStage,
    ValidateInputStage,
    ambient_scope,
    point_key,
)
from repro.exceptions import BudgetExceeded, ReproError
from repro.graph.digraph import DirectedGraph
from repro.obs.manifest import (
    RunManifest,
    append_manifest,
    collect_environment,
    fingerprint_graph,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.pipeline.sweep import aggregate_average_f, sweep_n_clusters
from repro.symmetrize.base import get_symmetrization

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "ServiceError",
    "JobSpec",
    "RegisteredGraph",
    "Job",
    "JobManager",
]

#: Request kinds the daemon executes.
JOB_KINDS = ("symmetrize", "cluster", "sweep")

#: Lifecycle of a job. ``queued -> running -> done | failed``.
JOB_STATES = ("queued", "running", "done", "failed")


class ServiceError(ReproError):
    """A malformed or unserviceable request (HTTP 400/404/409)."""


def _labels_sha(labels: np.ndarray) -> str:
    """Content hash of a labels vector, for byte-identity checks."""
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One validated job request.

    ``counts`` applies to ``kind="sweep"`` only; ``n_clusters`` to
    ``cluster`` and ``sweep``-less kinds. The spec is hashable into
    the job's content address, so every field must stay
    JSON-canonical.
    """

    kind: str
    graph: str
    method: str = "degree_discounted"
    clusterer: str = "mlrmcl"
    threshold: float = 0.0
    n_clusters: int | None = None
    counts: tuple[int, ...] | None = None
    mode: str = "strict"
    tuning: str | None = None

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        """Validate a request body into a spec (raises 400-shaped
        :class:`ServiceError` on anything malformed)."""
        if not isinstance(payload, dict):
            raise ServiceError("job request body must be an object")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; expected one of "
                f"{JOB_KINDS}"
            )
        graph = payload.get("graph")
        if not isinstance(graph, str) or not graph:
            raise ServiceError(
                "job request needs 'graph': a registered graph name"
            )
        mode = payload.get("mode", "strict")
        if mode not in ("strict", "lenient"):
            raise ServiceError(f"unknown mode {mode!r}")
        counts = payload.get("counts")
        if kind == "sweep":
            if not counts or not isinstance(counts, (list, tuple)):
                raise ServiceError(
                    "sweep jobs need 'counts': a list of cluster "
                    "counts"
                )
            counts = tuple(int(k) for k in counts)
        elif counts is not None:
            raise ServiceError(
                f"'counts' is only valid for sweep jobs, not {kind!r}"
            )
        tuning = payload.get("tuning")
        if tuning not in (None, "auto"):
            raise ServiceError(
                f"unknown tuning {tuning!r}; expected 'auto' or null"
            )
        n_clusters = payload.get("n_clusters")
        try:
            return cls(
                kind=kind,
                graph=graph,
                method=str(payload.get("method", "degree_discounted")),
                clusterer=str(payload.get("clusterer", "mlrmcl")),
                threshold=float(payload.get("threshold", 0.0)),
                n_clusters=(
                    int(n_clusters) if n_clusters is not None else None
                ),
                counts=counts,
                mode=mode,
                tuning=tuning,
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job request: {exc}") from exc

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "graph": self.graph,
            "method": self.method,
            "clusterer": self.clusterer,
            "threshold": self.threshold,
            "n_clusters": self.n_clusters,
            "counts": list(self.counts) if self.counts else None,
            "mode": self.mode,
            "tuning": self.tuning,
        }


@dataclass(frozen=True)
class RegisteredGraph:
    """A directed graph the daemon holds in memory for jobs."""

    name: str
    graph: DirectedGraph
    sha: str
    created_unix: float

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "sha": self.sha,
            "n_nodes": self.graph.n_nodes,
            "n_edges": self.graph.n_edges,
            "created_unix": self.created_unix,
        }


class Job:
    """One submitted (possibly shared) unit of work."""

    def __init__(
        self,
        job_id: str,
        key: str,
        spec: JobSpec,
        client: str,
        journal_path: Path,
    ) -> None:
        self.job_id = job_id
        self.key = key
        self.spec = spec
        self.clients = [client]
        self.journal_path = journal_path
        self.state = "queued"
        self.created_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.error_type: str | None = None
        self.warnings: list[dict[str, str]] = []
        self.done = threading.Event()

    @property
    def seconds(self) -> float | None:
        if self.started_unix is None or self.finished_unix is None:
            return None
        return self.finished_unix - self.started_unix

    def summary(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.spec.kind,
            "graph": self.spec.graph,
            "state": self.state,
            "clients": list(self.clients),
            "created_unix": self.created_unix,
            "seconds": self.seconds,
            "error": self.error,
            "error_type": self.error_type,
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.summary(),
            "spec": self.spec.as_dict(),
            "journal": str(self.journal_path),
            "warnings": self.warnings,
            "result": self.result,
        }


class JobManager:
    """Owns graphs, the cache, and a bounded pool of job workers.

    Parameters
    ----------
    data_dir:
        Daemon state root: graph uploads, per-job journals and the
        manifest run log all live under it.
    cache:
        The shared artifact cache (memory-only by default; pass one
        with a ``directory`` for a persistent disk tier).
    max_workers:
        Bound on concurrently *executing* jobs; further submissions
        queue.
    job_budget:
        Per-job :class:`Budget` ceiling (wall / memory), enforced by
        the engine as the plan budget of every execution.
    client_wall_s:
        Cumulative per-client wall-clock allowance across all their
        completed jobs; ``None`` disables tenant budgeting. Clients
        over the allowance are denied with
        :class:`~repro.exceptions.BudgetExceeded`.
    retry:
        :class:`RetryPolicy` applied to every job's stages.
    metrics:
        Server-level registry for service counters (jobs, dedup
        hits, denials). A private one is created when omitted.
    """

    def __init__(
        self,
        data_dir: str | Path,
        cache: ArtifactCache | None = None,
        max_workers: int = 2,
        job_budget: Budget | None = None,
        client_wall_s: float | None = None,
        retry: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.cache = cache if cache is not None else ArtifactCache()
        self.job_budget = job_budget
        self.client_wall_s = client_wall_s
        self.retry = retry
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.manifest_log = self.data_dir / "manifests.jsonl"
        self._graphs: dict[str, RegisteredGraph] = {}
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._client_spent: dict[str, float] = {}
        self._futures: dict[str, concurrent.futures.Future] = {}
        self._lock = threading.RLock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="repro-job",
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register_graph(
        self, name: str, graph: DirectedGraph
    ) -> RegisteredGraph:
        """Register ``graph`` under ``name`` (idempotent for the same
        content; a different graph under a taken name is a conflict)."""
        if not name or "/" in name:
            raise ServiceError(
                f"invalid graph name {name!r} (must be non-empty, "
                "no '/')"
            )
        sha = fingerprint_graph(graph)["sha256"]
        with self._lock:
            existing = self._graphs.get(name)
            if existing is not None:
                if existing.sha == sha:
                    return existing
                raise ServiceError(
                    f"graph name {name!r} is already registered with "
                    f"different content (sha {existing.sha})"
                )
            registered = RegisteredGraph(
                name=name,
                graph=graph,
                sha=sha,
                created_unix=time.time(),
            )
            self._graphs[name] = registered
            self.metrics.inc("service_graphs_registered_total")
        return registered

    def graph(self, name: str) -> RegisteredGraph:
        with self._lock:
            try:
                return self._graphs[name]
            except KeyError:
                raise ServiceError(
                    f"no graph registered under {name!r}"
                ) from None

    def graphs(self) -> list[dict[str, Any]]:
        with self._lock:
            return [g.summary() for g in self._graphs.values()]

    # ------------------------------------------------------------------
    # Job identity
    # ------------------------------------------------------------------
    def _lineage_stages(self, spec: JobSpec) -> list[Any]:
        """The stage lineage a spec's execution runs through, used
        for its content address (and submit-time validation of the
        method / clusterer names)."""
        symmetrization = get_symmetrization(spec.method)
        stages: list[Any] = [
            ValidateInputStage(),
            SymmetrizeStage(
                symmetrization, threshold=spec.threshold
            ),
        ]
        if spec.kind == "cluster":
            stages.append(
                ClusterStage(
                    get_clusterer(spec.clusterer), spec.n_clusters
                )
            )
        elif spec.kind == "sweep":
            # Counts are swept per point; they enter the key as the
            # parameter, and the clusterer via one representative
            # stage fingerprint.
            stages.append(
                ClusterStage(get_clusterer(spec.clusterer), None)
            )
        return stages

    def job_key(self, spec: JobSpec) -> str:
        """The content address two identical requests share."""
        registered = self.graph(spec.graph)
        lineage = [
            stage.fingerprint()
            for stage in self._lineage_stages(spec)
        ]
        return point_key(
            registered.sha, lineage, spec.as_dict(), spec.mode
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _check_client_budget(self, client: str) -> None:
        if self.client_wall_s is None:
            return
        spent = self._client_spent.get(client, 0.0)
        if spent >= self.client_wall_s:
            self.metrics.inc("service_budget_denials_total")
            raise BudgetExceeded(
                f"client:{client}", "wall_s", self.client_wall_s,
                spent,
            )

    def submit(self, spec: JobSpec, client: str) -> tuple[Job, bool]:
        """Submit (or join) a job; returns ``(job, deduped)``.

        Raises :class:`BudgetExceeded` when ``client`` has exhausted
        its wall-clock allowance, and :class:`ServiceError` for
        unknown graphs / methods / clusterers.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("server is shutting down")
            self._check_client_budget(client)
            key = self.job_key(spec)
            existing = self._by_key.get(key)
            if existing is not None and existing.state != "failed":
                # Identical request: share the computation (or its
                # recorded result). The rider is not charged.
                if client not in existing.clients:
                    existing.clients.append(client)
                self.metrics.inc("service_dedup_hits_total")
                return existing, True
            job = Job(
                job_id=f"job-{key[:16]}",
                key=key,
                spec=spec,
                client=client,
                journal_path=(
                    self.data_dir
                    / "jobs"
                    / f"job-{key[:16]}"
                    / "journal.jsonl"
                ),
            )
            self._jobs[job.job_id] = job
            self._by_key[key] = job
            self.metrics.inc("service_jobs_submitted_total")
            self._futures[job.job_id] = self._executor.submit(
                self._execute, job, client
            )
            return job, False

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(
                    f"no job with id {job_id!r}"
                ) from None

    def jobs(self) -> list[dict[str, Any]]:
        with self._lock:
            return [j.summary() for j in self._jobs.values()]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "graphs": len(self._graphs),
                "jobs": states,
                "clients": {
                    client: {
                        "wall_s_spent": spent,
                        "wall_s_budget": self.client_wall_s,
                    }
                    for client, spent in self._client_spent.items()
                },
                "metrics": self.metrics.as_dict(),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    def _execute(self, job: Job, client: str) -> None:
        job.state = "running"
        job.started_unix = time.time()
        journal = RunJournal(job.journal_path, run_id=job.job_id)
        tracer = Tracer()
        job_metrics = MetricsRegistry()
        registered = self.graph(job.spec.graph)
        manifest: RunManifest | None = None
        try:
            # Isolated scope: the job sees the shared cache, its own
            # tracer/metrics/journal, and nothing from whatever ran
            # on this pooled thread before it.
            with ambient_scope(
                cache=self.cache,
                tracer=tracer,
                metrics=job_metrics,
                journal=journal,
                isolate=True,
            ):
                result, manifest = self._run_spec(
                    job, registered, tracer, job_metrics
                )
            journal.finish("complete")
            job.result = result
            job.state = "done"
            self.metrics.inc("service_jobs_completed_total")
        except Exception as exc:  # noqa: BLE001 - job boundary
            journal.finish("failed")
            job.error = str(exc)
            job.error_type = type(exc).__name__
            job.state = "failed"
            self.metrics.inc("service_jobs_failed_total")
            if isinstance(exc, BudgetExceeded):
                self.metrics.inc("service_job_budget_overruns_total")
        finally:
            journal.close()
            job.finished_unix = time.time()
            with self._lock:
                self._client_spent[client] = self._client_spent.get(
                    client, 0.0
                ) + (job.finished_unix - job.started_unix)
                self._futures.pop(job.job_id, None)
            if manifest is not None:
                manifest.job = {
                    "job_id": job.job_id,
                    "key": job.key,
                    "clients": list(job.clients),
                }
                try:
                    append_manifest(manifest, self.manifest_log)
                except OSError:
                    self.metrics.inc(
                        "service_manifest_write_failures_total"
                    )
            job.done.set()

    def _plan_budget(self) -> Budget | None:
        return self.job_budget

    def _run_spec(
        self,
        job: Job,
        registered: RegisteredGraph,
        tracer: Tracer,
        job_metrics: MetricsRegistry,
    ) -> tuple[dict[str, Any], RunManifest | None]:
        spec = job.spec
        self.metrics.inc("service_job_executions_total")
        if spec.kind == "cluster":
            return self._run_cluster(job, registered)
        if spec.kind == "symmetrize":
            return self._run_symmetrize(
                job, registered, tracer, job_metrics
            )
        return self._run_sweep(job, registered, tracer, job_metrics)

    def _run_cluster(
        self, job: Job, registered: RegisteredGraph
    ) -> tuple[dict[str, Any], RunManifest | None]:
        spec = job.spec
        pipe = SymmetrizeClusterPipeline(
            spec.method,
            spec.clusterer,
            threshold=spec.threshold,
            mode=spec.mode,
            tuning=spec.tuning,
        )
        result = pipe.run(
            registered.graph,
            n_clusters=spec.n_clusters,
            plan_budget=self._plan_budget(),
            retry=self.retry,
        )
        job.warnings = [
            {"stage": w.stage, "code": w.code, "message": w.message}
            for w in result.warnings
        ]
        labels = result.clustering.labels
        payload = {
            "kind": "cluster",
            "labels": [int(v) for v in labels],
            "labels_sha256": _labels_sha(labels),
            "n_clusters": int(result.clustering.n_clusters),
            "n_edges": int(result.symmetrized.n_edges),
            "symmetrize_seconds": result.symmetrize_seconds,
            "cluster_seconds": result.cluster_seconds,
            "cache": result.cache,
        }
        return payload, result.manifest

    def _run_symmetrize(
        self,
        job: Job,
        registered: RegisteredGraph,
        tracer: Tracer,
        job_metrics: MetricsRegistry,
    ) -> tuple[dict[str, Any], RunManifest | None]:
        spec = job.spec
        stages = [
            ValidateInputStage(),
            SymmetrizeStage(
                get_symmetrization(spec.method),
                threshold=spec.threshold,
            ),
        ]
        plan = Plan(
            stages,
            initial=("graph",),
            name=f"service.symmetrize.{spec.method}",
        )
        executor = Executor(
            mode=spec.mode,
            cache=self.cache,
            plan_budget=self._plan_budget(),
            retry=self.retry,
        )
        execution = executor.execute(
            plan,
            {"graph": registered.graph},
            dataset_sha=registered.sha,
        )
        job.warnings = [
            {"stage": w.stage, "code": w.code, "message": w.message}
            for w in execution.warnings
        ]
        symmetrized = execution.values["symmetrized"]
        payload = {
            "kind": "symmetrize",
            "n_nodes": int(symmetrized.n_nodes),
            "n_edges": int(symmetrized.n_edges),
            "result_sha": fingerprint_graph(symmetrized)["sha256"],
            "seconds": execution.seconds("symmetrize"),
            "cache": execution.cache_summary(),
        }
        manifest = self._service_manifest(
            job, registered, tracer, job_metrics,
            timings={
                "symmetrize_seconds": execution.seconds("symmetrize")
            },
            cache=execution.cache_summary(),
        )
        return payload, manifest

    def _run_sweep(
        self,
        job: Job,
        registered: RegisteredGraph,
        tracer: Tracer,
        job_metrics: MetricsRegistry,
    ) -> tuple[dict[str, Any], RunManifest | None]:
        spec = job.spec
        points = sweep_n_clusters(
            registered.graph,
            spec.method,
            spec.clusterer,
            list(spec.counts or ()),
            threshold=spec.threshold,
            cache=self.cache,
            mode=spec.mode,
            retry=self.retry,
            plan_budget=self._plan_budget(),
        )
        payload = {
            "kind": "sweep",
            "points": [
                {
                    "parameter": point.parameter,
                    "n_clusters": int(point.n_clusters),
                    "average_f": point.average_f,
                    "n_edges": int(point.n_edges),
                    "cluster_seconds": point.cluster_seconds,
                    "cache_hit": point.cache_hit,
                    "failed": point.failed,
                    "error": point.error,
                }
                for point in points
            ],
            "mean_average_f": aggregate_average_f(points),
        }
        manifest = self._service_manifest(
            job, registered, tracer, job_metrics,
            timings={
                "sweep_seconds": sum(
                    p.cluster_seconds for p in points
                )
            },
            cache={
                "hits": sum(1 for p in points if p.cache_hit),
                "misses": sum(
                    1 for p in points if p.cache_hit is False
                ),
            },
        )
        return payload, manifest

    def _service_manifest(
        self,
        job: Job,
        registered: RegisteredGraph,
        tracer: Tracer,
        job_metrics: MetricsRegistry,
        timings: dict[str, float],
        cache: dict[str, Any],
    ) -> RunManifest:
        return RunManifest(
            kind="service",
            name=f"{job.spec.kind}.{job.spec.method}",
            config=job.spec.as_dict(),
            dataset=fingerprint_graph(registered.graph),
            environment=collect_environment(),
            warnings=job.warnings,
            trace=tracer.as_dict().get("spans", []),
            metrics=job_metrics.as_dict(),
            cache=cache,
            timings=timings,
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> bool:
        """Stop accepting jobs and drain the running ones.

        Queued-but-unstarted jobs are cancelled (they stay
        ``queued`` with an error note); running jobs get up to
        ``timeout`` seconds to finish. Returns ``True`` on a clean
        drain.
        """
        with self._lock:
            self._closed = True
            pending = dict(self._futures)
        for job_id, future in pending.items():
            if future.cancel():
                job = self._jobs.get(job_id)
                if job is not None:
                    job.state = "failed"
                    job.error = "cancelled at shutdown"
                    job.error_type = "Cancelled"
                    job.done.set()
        done, not_done = concurrent.futures.wait(
            [f for f in pending.values() if not f.cancelled()],
            timeout=timeout,
        )
        self._executor.shutdown(wait=False, cancel_futures=True)
        return not not_done
