"""Asyncio HTTP/JSON front end of the clustering service.

Stdlib only: a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
(one request per connection, ``Connection: close``), translating the
wire protocol into :class:`~repro.service.jobs.JobManager` calls. Job
execution happens on the manager's worker threads; the event loop only
parses requests, serializes responses and tails journals, so slow jobs
never block health checks or event streams.

Endpoints
---------
- ``GET  /health``            liveness + identity
- ``GET  /livez``             bare liveness probe (always 200)
- ``GET  /readyz``            readiness probe (503 while draining)
- ``GET  /stats``             job/client/cache/metrics counters
- ``POST /graphs``            register a graph (name + edge list)
- ``GET  /graphs``            list registered graphs
- ``POST /jobs``              submit a job (dedup-aware)
- ``GET  /jobs``              list jobs
- ``GET  /jobs/<id>``         one job; ``?wait=<s>`` blocks until done
- ``GET  /jobs/<id>/events``  NDJSON stream of the job's journal
- ``POST /shutdown``          drain and stop

Error bodies are structured: ``{"error", "error_type", "code"}`` with
``code`` from the failure taxonomy (``budget_exceeded``,
``overloaded``, ``worker_crashed``, ``transient``,
``invalid_request``, ``internal``), plus the structured budget fields
for :class:`~repro.exceptions.BudgetExceeded` and ``retry_after_s``
(mirrored in a ``Retry-After`` header) for 503/429s. Status mapping:
"no graph"/"no job" :class:`~repro.service.jobs.ServiceError` → 404,
name conflicts → 409, other validation failures → 400, budget
denials → 429, overload shedding and shutdown → 503, anything
unexpected → 500.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

from repro.engine import ArtifactCache, Budget, JournalTailer, RetryPolicy
from repro.engine.chaos import chaos
from repro.exceptions import (
    BudgetExceeded,
    ReproError,
    ServiceOverloaded,
)
from repro.graph.digraph import DirectedGraph
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import (
    JobManager,
    JobSpec,
    ServiceError,
    error_code_for,
)
from repro.service.store import ServiceStore

__all__ = ["ServiceServer", "serve"]

#: Protocol marker returned by ``/health`` and asserted by the client.
SERVICE_SCHEMA = "repro-service/v1"

_MAX_BODY = 256 * 1024 * 1024  # uploads are edge lists; be generous
_EVENTS_POLL_S = 0.05


class _HttpError(Exception):
    """Internal: carries an HTTP status to the response writer."""

    def __init__(
        self, status: int, message: str, error_type: str = ""
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type or type(self).__name__


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def _status_for(exc: Exception) -> int:
    if isinstance(exc, BudgetExceeded):
        return 429
    if isinstance(exc, ServiceOverloaded):
        return 503
    if isinstance(exc, ServiceError):
        message = str(exc)
        if message.startswith(("no graph", "no job")):
            return 404
        if "already registered" in message:
            return 409
        if "shutting down" in message:
            return 503
        return 400
    if isinstance(exc, ReproError):
        return 400
    return 500


class ServiceServer:
    """The daemon: owns a :class:`JobManager` and an asyncio server.

    Parameters mirror :class:`~repro.service.jobs.JobManager`, plus
    the listen address. ``port=0`` binds an ephemeral port — read the
    bound one from :attr:`port` after :meth:`start` (the integration
    tests rely on this to avoid collisions).
    """

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ArtifactCache | None = None,
        max_workers: int = 2,
        job_budget: Budget | None = None,
        client_wall_s: float | None = None,
        retry: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        store: ServiceStore | None = None,
        worker_mode: str = "thread",
        max_queue_depth: int | None = None,
        shed_retry_after_s: float = 1.0,
        max_jobs: int | None = None,
        max_job_age_s: float | None = None,
        stream_drain_s: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(
            data_dir,
            cache=cache,
            max_workers=max_workers,
            job_budget=job_budget,
            client_wall_s=client_wall_s,
            retry=retry,
            metrics=metrics,
            store=store,
            worker_mode=worker_mode,
            max_queue_depth=max_queue_depth,
            shed_retry_after_s=shed_retry_after_s,
            max_jobs=max_jobs,
            max_job_age_s=max_job_age_s,
        )
        self.started_unix = time.time()
        self.stream_drain_s = stream_drain_s
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._streams: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> bool:
        """Serve until ``POST /shutdown`` (or :meth:`request_shutdown`).

        Returns ``True`` when the job manager drained cleanly.

        Shutdown ordering matters: the listening socket closes first
        (no new connections), then the manager drains its jobs, and
        only then do we wait on the server's connection handlers —
        open NDJSON event streams keep tailing until their job
        finishes and the ``job_end`` sentinel is written, so a slow
        reader attached at ``/shutdown`` time still sees the full
        stream (bounded by ``stream_drain_s``). Waiting on handlers
        *before* the drain would deadlock: streams poll until their
        jobs complete, and ``Server.wait_closed`` (3.12.1+) waits
        for the handlers.
        """
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._shutdown.wait()
        self._server.close()
        # Drain jobs off-loop: close() blocks on running futures.
        clean = await asyncio.get_running_loop().run_in_executor(
            None, self.manager.close
        )
        streams = {t for t in self._streams if not t.done()}
        if streams:
            _done, pending = await asyncio.wait(
                streams, timeout=self.stream_drain_s
            )
            for task in pending:  # reader never drained; cut it off
                task.cancel()
        with contextlib.suppress(Exception):
            await asyncio.wait_for(
                self._server.wait_closed(), timeout=5.0
            )
        return clean

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, target, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                await self._dispatch(method, target, headers, body, writer)
            except _HttpError as exc:
                await self._respond_error(writer, exc.status, exc)
            except Exception as exc:  # noqa: BLE001 - connection boundary
                await self._respond_error(writer, _status_for(exc), exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]]:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(431, "request head too large") from exc
        lines = raw.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length <= 0:
            return b""
        if length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes exceeds limit")
        return await reader.readexactly(length)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        split = urlsplit(target)
        path = unquote(split.path).rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        route = (method, path)
        if route == ("GET", "/health"):
            return await self._respond(writer, 200, self._health())
        if route == ("GET", "/livez"):
            return await self._respond(
                writer, 200, {"status": "alive"}
            )
        if route == ("GET", "/readyz"):
            return await self._readyz(writer)
        if route == ("GET", "/stats"):
            return await self._respond(writer, 200, self.manager.stats())
        if route == ("GET", "/graphs"):
            return await self._respond(
                writer, 200, {"graphs": self.manager.graphs()}
            )
        if route == ("POST", "/graphs"):
            return await self._post_graph(writer, body)
        if route == ("GET", "/jobs"):
            return await self._respond(
                writer, 200, {"jobs": self.manager.jobs()}
            )
        if route == ("POST", "/jobs"):
            return await self._post_job(writer, headers, body)
        if route == ("POST", "/shutdown"):
            await self._respond(writer, 200, {"shutdown": "draining"})
            self.request_shutdown()
            return None
        if method == "GET" and path.startswith("/jobs/"):
            tail = path[len("/jobs/") :]
            if tail.endswith("/events"):
                return await self._stream_events(
                    writer, tail[: -len("/events")].rstrip("/")
                )
            return await self._get_job(writer, tail, query)
        raise _HttpError(404, f"no route for {method} {path}")

    def _health(self) -> dict[str, Any]:
        return {
            "schema": SERVICE_SCHEMA,
            "status": "ok",
            "uptime_seconds": time.time() - self.started_unix,
        }

    async def _readyz(self, writer: asyncio.StreamWriter) -> None:
        """Readiness: 503 while shutting down, 200 otherwise.

        The probe doubles as the disk-space watchdog's poll point —
        deployments hit it periodically, which is exactly the cadence
        the store's free-space check wants.
        """
        store = self.manager.store
        if store is not None:
            store.check_disk()
        if self._shutdown.is_set():
            return await self._respond(
                writer,
                503,
                {"ready": False, "reason": "shutting_down"},
                headers={"Retry-After": "1"},
            )
        payload: dict[str, Any] = {
            "ready": True,
            "queue_depth": self.manager.queue_depth(),
            "worker_mode": self.manager.worker_mode,
        }
        if store is not None:
            payload["store"] = store.status()
        return await self._respond(writer, 200, payload)

    @staticmethod
    def _parse_json(body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        return payload

    async def _post_graph(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        payload = self._parse_json(body)
        name = payload.get("name")
        edges = payload.get("edges")
        if not isinstance(name, str) or not isinstance(edges, list):
            raise _HttpError(
                400, "graph upload needs 'name' and 'edges' [[u, v, w], ...]"
            )
        n_nodes = payload.get("n_nodes")
        # Build off-loop: parsing a large edge list is CPU-bound.
        graph = await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: DirectedGraph.from_edges(
                [tuple(edge) for edge in edges],
                n_nodes=int(n_nodes) if n_nodes is not None else None,
            ),
        )
        registered = self.manager.register_graph(name, graph)
        await self._respond(writer, 201, registered.summary())

    async def _post_job(
        self,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        chaos("service.accept")
        payload = self._parse_json(body)
        client = str(
            payload.pop("client", None)
            or headers.get("x-repro-client")
            or "anonymous"
        )
        spec = JobSpec.from_dict(payload)
        job, deduped = self.manager.submit(spec, client)
        await self._respond(
            writer,
            202,
            {
                "job_id": job.job_id,
                "key": job.key,
                "state": job.state,
                "deduped": deduped,
            },
        )

    async def _get_job(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        query: dict[str, str],
    ) -> None:
        job = self.manager.job(job_id)
        wait_s = float(query.get("wait", "0") or "0")
        if wait_s > 0 and not job.done.is_set():
            # Block off-loop on the job's Event, not the event loop.
            await asyncio.get_running_loop().run_in_executor(
                None, job.done.wait, wait_s
            )
        await self._respond(writer, 200, job.as_dict())

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        job = self.manager.job(job_id)
        # Register this handler so shutdown lets it drain to the
        # job_end sentinel before the server stops waiting on it.
        task = asyncio.current_task()
        if task is not None:
            self._streams.add(task)
            task.add_done_callback(self._streams.discard)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        tailer = JournalTailer(job.journal_path, run_id=job.job_id)
        while True:
            finished = job.done.is_set()
            for record in tailer.poll():
                writer.write(_json_bytes(record))
            await writer.drain()
            if finished:
                # One poll ran *after* observing completion, so the
                # journal tail has been flushed into the stream.
                break
            await asyncio.sleep(_EVENTS_POLL_S)
        writer.write(
            _json_bytes(
                {
                    "type": "job_end",
                    "job_id": job.job_id,
                    "state": job.state,
                    "error": job.error,
                }
            )
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Response writers
    # ------------------------------------------------------------------
    _REASONS = {
        200: "OK",
        201: "Created",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        409: "Conflict",
        413: "Payload Too Large",
        429: "Too Many Requests",
        431: "Request Header Fields Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = _json_bytes(payload)
        reason = self._REASONS.get(status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, exc: Exception
    ) -> None:
        """Structured error body: message, exception type, and a
        machine-readable ``code`` from the failure taxonomy; budget
        overruns keep their structured fields and 503/429s carry
        ``Retry-After``."""
        error_type = getattr(exc, "error_type", "") or type(exc).__name__
        code = error_code_for(exc)
        if status == 404:
            code = "not_found"
        elif status == 409:
            code = "conflict"
        elif status == 503 and not isinstance(exc, ServiceOverloaded):
            code = "shutting_down"
        elif code == "internal" and 400 <= status < 500:
            code = "invalid_request"
        body: dict[str, Any] = {
            "error": str(exc),
            "error_type": error_type,
            "code": code,
        }
        headers: dict[str, str] = {}
        if isinstance(exc, BudgetExceeded):
            body.update(
                scope=exc.scope,
                resource=exc.resource,
                limit=exc.limit,
                spent=exc.spent,
            )
            headers["Retry-After"] = "1"
        if isinstance(exc, ServiceOverloaded):
            body["retry_after_s"] = exc.retry_after_s
            headers["Retry-After"] = str(
                max(1, int(round(exc.retry_after_s)))
            )
        if status == 503 and "Retry-After" not in headers:
            headers["Retry-After"] = "1"
        await self._respond(writer, status, body, headers=headers)


async def _serve_async(server: ServiceServer) -> bool:
    await server.start()
    print(
        f"repro service listening on "
        f"http://{server.host}:{server.port}",
        flush=True,
    )
    return await server.serve_until_shutdown()


def serve(server: ServiceServer) -> bool:
    """Run ``server`` until shutdown; returns ``True`` on clean drain."""
    try:
        return asyncio.run(_serve_async(server))
    except KeyboardInterrupt:
        return server.manager.close(timeout=10.0)
