"""Consensus clustering across randomized runs.

The stage-2 algorithms are randomized (coarsening order, seeds,
initializations) and at laptop scale their output varies noticeably
run to run (see EXPERIMENTS.md). Consensus clustering is the standard
variance-control tool: run the base clusterer several times, build the
*co-association graph* (edge weight = fraction of runs placing two
nodes together), and cluster that. The consensus graph is itself a
similarity graph, so the final step reuses any registered clusterer —
the same compositionality argument the paper makes for its two-stage
framework.
"""

from __future__ import annotations

import copy

import scipy.sparse as sp

from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    get_clusterer,
    register_clusterer,
)
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph

__all__ = ["ConsensusClusterer", "co_association_matrix"]


def co_association_matrix(
    clusterings: list[Clustering],
) -> sp.csr_array:
    """Fraction of clusterings placing each node pair together.

    Built sparsely from each clustering's indicator matrix:
    ``sum_r H_r H_rᵀ / R``. The diagonal is 1 by construction.
    """
    if not clusterings:
        raise ClusteringError("need at least one clustering")
    n = clusterings[0].n_nodes
    total: sp.csr_array | None = None
    for clustering in clusterings:
        if clustering.n_nodes != n:
            raise ClusteringError(
                "all clusterings must cover the same nodes"
            )
        H = clustering.indicator_matrix().tocsr()
        pairs = (H @ H.T).tocsr()
        total = pairs if total is None else total + pairs
    assert total is not None
    return (total / len(clusterings)).tocsr()


@register_clusterer("consensus")
class ConsensusClusterer(GraphClusterer):
    """Majority-vote consensus over randomized base runs.

    Parameters
    ----------
    base:
        Base clusterer name or instance. The instance must expose a
        ``seed`` attribute (all built-in algorithms do) — each run
        clones it with a different seed.
    n_runs:
        Number of base runs to aggregate.
    final:
        Clusterer applied to the co-association graph; defaults to
        the base clusterer's family via ``"mlrmcl"``.
    agreement_threshold:
        Co-association entries below this fraction are dropped before
        the final clustering (majority vote at the default 0.5).
    seed:
        Base seed; run ``r`` uses ``seed + r``.
    """

    def __init__(
        self,
        base: str | GraphClusterer = "metis",
        n_runs: int = 5,
        final: str | GraphClusterer = "mlrmcl",
        agreement_threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if isinstance(base, str):
            base = get_clusterer(base)
        if isinstance(final, str):
            final = get_clusterer(final)
        if not hasattr(base, "seed"):
            raise ClusteringError(
                "base clusterer must expose a 'seed' attribute"
            )
        if n_runs < 1:
            raise ClusteringError("n_runs must be >= 1")
        if not 0.0 <= agreement_threshold <= 1.0:
            raise ClusteringError(
                "agreement_threshold must lie in [0, 1]"
            )
        self.base = base
        self.n_runs = int(n_runs)
        self.final = final
        self.agreement_threshold = float(agreement_threshold)
        self.seed = int(seed)

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        runs = []
        for r in range(self.n_runs):
            member = copy.deepcopy(self.base)
            member.seed = self.seed + r  # type: ignore[attr-defined]
            runs.append(member.cluster(graph, n_clusters))
        consensus = co_association_matrix(runs)
        if self.agreement_threshold > 0:
            coo = consensus.tocoo()
            keep = coo.data >= self.agreement_threshold
            consensus = sp.coo_array(
                (coo.data[keep], (coo.row[keep], coo.col[keep])),
                shape=consensus.shape,
            ).tocsr()
        lil = consensus.tolil()
        lil.setdiag(0.0)
        consensus = lil.tocsr()
        consensus.eliminate_zeros()
        consensus_graph = UndirectedGraph(
            consensus, node_names=graph.node_names, validate=False
        )
        if consensus_graph.adjacency.nnz == 0:
            # No pair survived the vote: fall back to the best base run
            # (everything was too unstable to aggregate).
            return runs[0]
        return self.final.cluster(consensus_graph, n_clusters)

    def __repr__(self) -> str:
        return (
            f"ConsensusClusterer(base={self.base!r}, "
            f"n_runs={self.n_runs})"
        )
