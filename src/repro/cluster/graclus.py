"""Graclus-style multilevel weighted kernel k-means clustering.

Dhillon, Guan & Kulis ("Weighted Graph Cuts without Eigenvectors: A
Multilevel Approach", TPAMI 2007) showed that minimizing normalized cut
is equivalent to weighted kernel k-means with node weights ``w_i = d_i``
(degrees) and kernel ``K = sigma * D^-1 + D^-1 W D^-1``, where ``sigma``
is a diagonal shift making ``K`` positive semi-definite. Their Graclus
algorithm runs this kernel k-means inside a multilevel frame:

1. coarsen by heavy-edge matching,
2. partition the coarsest graph (here: by region growing, the same
   seeded BFS initializer METIS uses, generalized to k seeds),
3. uncoarsen, refining at each level with weighted-kernel-k-means
   iterations that monotonically improve the Ncut objective.

This is the third stage-2 clustering algorithm of the paper (it was
only able to run on Cora there; our reimplementation has no such
limit, but its relative behaviour matches Figures 5–6).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cluster.coarsen import build_hierarchy
from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    register_clusterer,
)
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph

__all__ = ["GraclusClusterer", "kernel_kmeans_ncut_refine"]


def _indicator(labels: np.ndarray, k: int) -> sp.csr_array:
    """Sparse n x k one-hot matrix of a label vector."""
    n = labels.size
    return sp.csr_array(
        (np.ones(n), (np.arange(n), labels)), shape=(n, k)
    )


def kernel_kmeans_ncut_refine(
    adjacency: sp.csr_array,
    labels: np.ndarray,
    k: int,
    max_iter: int = 30,
    sigma: float = 1e-8,
) -> np.ndarray:
    """Weighted kernel k-means iterations minimizing Ncut.

    Implements the batch update of Dhillon et al.: with degrees ``d``
    and cluster volumes ``s_c = sum_{j in c} d_j``, the kernel distance
    of node ``i`` to cluster ``c`` reduces (dropping i-constant terms)
    to::

        dist(i, c) = -2 (sigma * 1[i in c] + links(i, c) / d_i) / s_c
                     + (sigma * s_c + links(c, c)) / s_c**2

    where ``links(i, c)`` is the edge weight from ``i`` into ``c``.
    Every node moves to its nearest cluster each iteration; the Ncut
    objective is non-increasing for positive-semi-definite kernels.
    Isolated (zero-degree) nodes keep their incoming label.

    Returns the refined label vector (may have empty clusters if a
    cluster loses all members; callers relabel via
    :class:`~repro.cluster.common.Clustering`).
    """
    n = adjacency.shape[0]
    labels = np.asarray(labels, dtype=np.int64).copy()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    active = degrees > 0
    safe_deg = np.where(active, degrees, 1.0)
    for _ in range(max_iter):
        H = _indicator(labels, k)
        links = np.asarray((adjacency @ H).todense())  # n x k
        volumes = degrees @ H  # s_c, shape (k,)
        links_cc = np.asarray((H.T @ sp.csr_array(links)).todense())
        links_cc = np.diag(links_cc)
        nonempty = volumes > 0
        safe_vol = np.where(nonempty, volumes, 1.0)
        dist = (
            -2.0 * links / (safe_deg[:, None] * safe_vol[None, :])
            + (sigma * volumes + links_cc)[None, :] / safe_vol[None, :] ** 2
        )
        # The sigma * 1[i in c] self-term.
        dist[np.arange(n), labels] -= (
            2.0 * sigma / safe_vol[labels]
        )
        dist[:, ~nonempty] = np.inf
        new_labels = np.asarray(dist.argmin(axis=1)).ravel()
        new_labels[~active] = labels[~active]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels


def _region_growing_init(
    adjacency: sp.csr_array,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial k-way partition by multi-seed region growing.

    Picks ``k`` seeds (first uniformly, the rest farthest-first by BFS
    hop distance) and grows all regions simultaneously, always
    absorbing the frontier node with the strongest connection to its
    region. Unreached nodes (other components) join the smallest
    region.
    """
    import heapq

    n = adjacency.shape[0]
    if k >= n:
        return np.arange(n, dtype=np.int64) % k
    seeds = [int(rng.integers(n))]
    # Farthest-first traversal on hop distance for the remaining seeds.
    dist = sp.csgraph.shortest_path(
        adjacency, method="D", unweighted=True, indices=seeds[0]
    )
    dist = np.where(np.isinf(dist), n + 1.0, dist)
    for _ in range(1, k):
        candidate = int(np.argmax(dist))
        seeds.append(candidate)
        new_dist = sp.csgraph.shortest_path(
            adjacency, method="D", unweighted=True, indices=candidate
        )
        new_dist = np.where(np.isinf(new_dist), n + 1.0, new_dist)
        np.minimum(dist, new_dist, out=dist)

    labels = np.full(n, -1, dtype=np.int64)
    heap: list[tuple[float, int, int, int]] = []
    counter = 0
    for c, s in enumerate(seeds):
        labels[s] = c
        start, end = adjacency.indptr[s], adjacency.indptr[s + 1]
        for idx in range(start, end):
            u = adjacency.indices[idx]
            if labels[u] < 0:
                counter += 1
                heapq.heappush(
                    heap, (-adjacency.data[idx], counter, int(u), c)
                )
    while heap:
        _, _, v, c = heapq.heappop(heap)
        if labels[v] >= 0:
            continue
        labels[v] = c
        start, end = adjacency.indptr[v], adjacency.indptr[v + 1]
        for idx in range(start, end):
            u = adjacency.indices[idx]
            if labels[u] < 0:
                counter += 1
                heapq.heappush(
                    heap, (-adjacency.data[idx], counter, int(u), c)
                )
    # Nodes in components containing no seed: round-robin the smallest.
    unassigned = np.flatnonzero(labels < 0)
    if unassigned.size:
        sizes = np.bincount(labels[labels >= 0], minlength=k)
        for v in unassigned:
            c = int(np.argmin(sizes))
            labels[v] = c
            sizes[c] += 1
    return labels


@register_clusterer("graclus")
class GraclusClusterer(GraphClusterer):
    """Multilevel weighted kernel k-means Ncut minimization.

    Parameters
    ----------
    max_iter_per_level:
        Kernel k-means iterations at each uncoarsening level.
    coarsen_factor:
        Coarsening stops at ``max(coarsen_factor * k, 32)`` nodes so
        the initial partition has room to place k regions.
    sigma:
        Kernel diagonal shift (positive-definiteness regularizer).
    seed:
        Seed of the internal random generator.
    """

    def __init__(
        self,
        max_iter_per_level: int = 20,
        coarsen_factor: int = 8,
        sigma: float = 1e-8,
        seed: int = 0,
    ) -> None:
        if coarsen_factor < 1:
            raise ClusteringError("coarsen_factor must be >= 1")
        self.max_iter_per_level = int(max_iter_per_level)
        self.coarsen_factor = int(coarsen_factor)
        self.sigma = float(sigma)
        self.seed = int(seed)

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        if n_clusters is None:
            raise ClusteringError("GraclusClusterer requires n_clusters")
        k = n_clusters
        rng = np.random.default_rng(self.seed)
        adj = graph.adjacency.tocsr()
        hierarchy = build_hierarchy(
            adj,
            rng,
            min_nodes=max(self.coarsen_factor * k, 32),
        )
        coarse = hierarchy.graphs[-1]
        k_eff = min(k, coarse.shape[0])
        labels = _region_growing_init(coarse, k_eff, rng)
        labels = kernel_kmeans_ncut_refine(
            coarse, labels, k_eff, self.max_iter_per_level, self.sigma
        )
        for level in range(len(hierarchy.mappings) - 1, -1, -1):
            labels = labels[hierarchy.mappings[level]]
            labels = kernel_kmeans_ncut_refine(
                hierarchy.graphs[level],
                labels,
                k_eff,
                self.max_iter_per_level,
                self.sigma,
            )
        return Clustering(labels)
