"""Clustering result type, clusterer base class and registry."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph

__all__ = [
    "Clustering",
    "GraphClusterer",
    "register_clusterer",
    "get_clusterer",
    "available_clusterers",
]

_REGISTRY: dict[str, type["GraphClusterer"]] = {}


class Clustering:
    """A hard assignment of nodes to clusters.

    Parameters
    ----------
    labels:
        Integer array of length ``n_nodes``; ``labels[v]`` is the
        cluster id of node ``v``. Labels are compacted at construction
        to ``0 .. n_clusters-1`` preserving order of first appearance.

    Notes
    -----
    Singleton clusters matter in this library: the paper diagnoses the
    pruned Bibliometric symmetrization by its ~50% singleton nodes
    (§5.3), so :meth:`singleton_count` and :attr:`sizes` are first-class.
    """

    __slots__ = ("_labels", "_sizes")

    def __init__(self, labels: np.ndarray | list[int]) -> None:
        arr = np.asarray(labels, dtype=np.int64)
        if arr.ndim != 1:
            raise ClusteringError("labels must be one-dimensional")
        if arr.size and arr.min() < 0:
            raise ClusteringError("labels must be non-negative")
        # Compact to 0..k-1 in order of first appearance.
        _, first_index, inverse = np.unique(
            arr, return_index=True, return_inverse=True
        )
        order = np.argsort(np.argsort(first_index))
        self._labels = order[inverse]
        self._sizes = np.bincount(self._labels) if arr.size else np.array(
            [], dtype=np.int64
        )

    @property
    def labels(self) -> np.ndarray:
        """Compacted label array (read-only view)."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    @property
    def n_nodes(self) -> int:
        """Number of clustered nodes."""
        return self._labels.size

    @property
    def n_clusters(self) -> int:
        """Number of distinct clusters."""
        return self._sizes.size

    @property
    def sizes(self) -> np.ndarray:
        """Size of each cluster, indexed by cluster id."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the nodes in ``cluster``."""
        if not 0 <= cluster < self.n_clusters:
            raise ClusteringError(f"no such cluster: {cluster}")
        return np.flatnonzero(self._labels == cluster)

    def clusters(self) -> list[np.ndarray]:
        """All clusters as a list of index arrays, ordered by id."""
        order = np.argsort(self._labels, kind="stable")
        boundaries = np.cumsum(self._sizes)[:-1]
        return np.split(order, boundaries)

    def singleton_count(self) -> int:
        """Number of clusters of size 1."""
        return int(np.count_nonzero(self._sizes == 1))

    def singleton_fraction(self) -> float:
        """Fraction of *nodes* that sit in singleton clusters."""
        if self.n_nodes == 0:
            return 0.0
        return self.singleton_count() / self.n_nodes

    def indicator_matrix(self):
        """Sparse ``n_nodes x n_clusters`` 0/1 assignment matrix."""
        import scipy.sparse as sp

        n = self.n_nodes
        return sp.csr_array(
            (
                np.ones(n),
                (np.arange(n), self._labels),
            ),
            shape=(n, self.n_clusters),
        )

    def __repr__(self) -> str:
        return (
            f"Clustering(n_nodes={self.n_nodes}, "
            f"n_clusters={self.n_clusters})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:
        raise TypeError("Clustering is not hashable")


def _check_input(graph: UndirectedGraph, n_clusters: int | None) -> None:
    """Shared input validation for clusterers."""
    if not isinstance(graph, UndirectedGraph):
        raise ClusteringError(
            f"expected an UndirectedGraph, got {type(graph).__name__}"
        )
    if graph.n_nodes == 0:
        raise ClusteringError("cannot cluster an empty graph")
    if n_clusters is not None:
        if n_clusters < 1:
            raise ClusteringError("n_clusters must be >= 1")
        if n_clusters > graph.n_nodes:
            raise ClusteringError(
                f"n_clusters={n_clusters} exceeds n_nodes={graph.n_nodes}"
            )


class GraphClusterer(abc.ABC):
    """Base class for undirected graph clustering algorithms.

    Subclasses implement :meth:`_cluster`; the public :meth:`cluster`
    adds input validation. ``n_clusters`` is a *request*: algorithms
    like MLR-MCL control cluster counts only indirectly (the paper
    notes this in §4.2) and may return a different number.
    """

    #: Registry name, set by :func:`register_clusterer`.
    name: str = "abstract"

    def cluster(
        self, graph: UndirectedGraph, n_clusters: int | None = None
    ) -> Clustering:
        """Cluster ``graph`` into (approximately) ``n_clusters`` parts.

        An edgeless graph short-circuits to the all-singletons
        clustering (the only consistent answer) with a
        :class:`~repro.exceptions.DegenerateGraphWarning` rather than
        feeding an all-zero matrix into algorithm internals.
        """
        import warnings

        from repro.exceptions import DegenerateGraphWarning
        from repro.obs.metrics import metric_set
        from repro.obs.trace import span
        from repro.perf.stopwatch import Stopwatch

        _check_input(graph, n_clusters)
        if graph.adjacency.nnz == 0:
            warnings.warn(
                DegenerateGraphWarning(
                    f"clusterer {self.name!r} got a graph with no "
                    "edges; every node becomes a singleton cluster",
                    code="edgeless_clustering",
                ),
                stacklevel=2,
            )
            return Clustering(np.arange(graph.n_nodes))
        with span(f"cluster:{self.name}") as sp_, Stopwatch(
            f"cluster:{self.name}"
        ) as sw:
            result = self._cluster(graph, n_clusters)
            sw.count(
                n_nodes=graph.n_nodes,
                nnz_in=graph.adjacency.nnz,
                n_clusters=result.n_clusters,
            )
            sp_.set(
                n_nodes=graph.n_nodes,
                nnz_in=graph.adjacency.nnz,
                n_clusters=result.n_clusters,
            )
            metric_set("n_clusters_found", result.n_clusters)
            metric_set(
                "singleton_fraction", result.singleton_fraction()
            )
        return result

    @abc.abstractmethod
    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        """Algorithm body (input already validated)."""

    def config(self) -> dict[str, object]:
        """Identifying parameters (algorithm name + constructor args).

        Mirrors :meth:`repro.symmetrize.Symmetrization.config`: the
        execution engine folds this into stage fingerprints, so it
        must cover every attribute that affects :meth:`_cluster`.
        """
        params = {
            key: value
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        }
        return {"algorithm": self.name, **params}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def register_clusterer(name: str):
    """Class decorator registering a clusterer under ``name``."""

    def decorator(cls: type[GraphClusterer]) -> type[GraphClusterer]:
        if not issubclass(cls, GraphClusterer):
            raise TypeError(f"{cls!r} is not a GraphClusterer subclass")
        key = name.lower()
        if key in _REGISTRY and _REGISTRY[key] is not cls:
            raise ClusteringError(
                f"clusterer name {name!r} already registered"
            )
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return decorator


def get_clusterer(name: str, **params: object) -> GraphClusterer:
    """Instantiate a registered clusterer by name.

    Known names: ``"mlrmcl"``, ``"metis"``, ``"graclus"``,
    ``"spectral"``.
    """
    key = name.lower()
    try:
        cls = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ClusteringError(
            f"unknown clusterer {name!r}; known: {known}"
        ) from None
    return cls(**params)  # type: ignore[call-arg]


def available_clusterers() -> list[str]:
    """Names of all registered clusterers, sorted."""
    return sorted(_REGISTRY)
