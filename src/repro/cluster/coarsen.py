"""Multilevel graph coarsening via heavy-edge matching.

All three multilevel clustering algorithms in this library (MLR-MCL,
METIS-style partitioning, Graclus-style kernel k-means) share the same
coarsening phase: repeatedly contract a heavy-edge matching until the
graph is small, keeping for each level the fine-to-coarse node mapping
so partitions/flows can be projected back up the hierarchy.

Contracted edge weight is summed; internal (contracted) edge weight is
accumulated on the coarse node's self-loop so that volumes — and hence
normalized cuts — are preserved across levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ClusteringError

__all__ = [
    "heavy_edge_matching",
    "contract",
    "CoarseningHierarchy",
    "build_hierarchy",
]


def heavy_edge_matching(
    adjacency: sp.csr_array,
    rng: np.random.Generator,
    node_weights: np.ndarray | None = None,
    max_node_weight: float | None = None,
) -> np.ndarray:
    """Greedy heavy-edge matching.

    Visits nodes in random order; each unmatched node is matched to the
    unmatched neighbour reachable through its heaviest edge (ties broken
    by first occurrence). Returns ``match`` with ``match[v]`` the mate
    of ``v`` (``match[v] == v`` for unmatched nodes).

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency.
    rng:
        Random generator for the visit order.
    node_weights, max_node_weight:
        When given, a match is skipped if the combined node weight
        would exceed ``max_node_weight`` — METIS's guard against
        runaway super-nodes that would make balancing impossible.
    """
    n = adjacency.shape[0]
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    indptr, indices, data = (
        adjacency.indptr,
        adjacency.indices,
        adjacency.data,
    )
    for v in order:
        if matched[v]:
            continue
        start, end = indptr[v], indptr[v + 1]
        best = -1
        best_weight = 0.0
        for idx in range(start, end):
            u = indices[idx]
            if u == v or matched[u]:
                continue
            if max_node_weight is not None and node_weights is not None:
                if node_weights[v] + node_weights[u] > max_node_weight:
                    continue
            w = data[idx]
            if w > best_weight:
                best_weight = w
                best = u
        if best >= 0:
            match[v] = best
            match[best] = v
            matched[v] = True
            matched[best] = True
    return match


def contract(
    adjacency: sp.csr_array,
    match: np.ndarray,
    node_weights: np.ndarray | None = None,
) -> tuple[sp.csr_array, np.ndarray, np.ndarray]:
    """Contract a matching into a coarse graph.

    Returns
    -------
    (coarse_adjacency, coarse_node_weights, mapping):
        ``mapping[v]`` is the coarse index of fine node ``v``. Parallel
        edges are summed; intra-pair edge weight lands on the coarse
        self-loop so total weight and node volumes are preserved.
    """
    n = adjacency.shape[0]
    if match.shape != (n,):
        raise ClusteringError("match must have one entry per node")
    if node_weights is None:
        node_weights = np.ones(n)
    # Assign coarse ids: the lower index of each matched pair owns the id.
    representative = np.minimum(np.arange(n), match)
    unique_reps, mapping = np.unique(representative, return_inverse=True)
    n_coarse = unique_reps.size
    # Coarse adjacency = S^T A S with S the (n x n_coarse) indicator.
    rows = mapping[np.repeat(np.arange(n), np.diff(adjacency.indptr))]
    cols = mapping[adjacency.indices]
    coarse = sp.coo_array(
        (adjacency.data, (rows, cols)), shape=(n_coarse, n_coarse)
    ).tocsr()
    coarse.sum_duplicates()
    coarse_weights = np.zeros(n_coarse)
    np.add.at(coarse_weights, mapping, node_weights)
    return coarse, coarse_weights, mapping


@dataclass
class CoarseningHierarchy:
    """A stack of coarsened graphs, finest level first.

    Attributes
    ----------
    graphs:
        ``graphs[0]`` is the input adjacency; ``graphs[-1]`` the
        coarsest.
    node_weights:
        Node weights per level (level 0 is all-ones unless supplied).
    mappings:
        ``mappings[l][v]`` maps a node of level ``l`` to its super-node
        at level ``l+1`` — there are ``len(graphs) - 1`` mappings.
    """

    graphs: list[sp.csr_array] = field(default_factory=list)
    node_weights: list[np.ndarray] = field(default_factory=list)
    mappings: list[np.ndarray] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        """Number of levels (1 = no coarsening happened)."""
        return len(self.graphs)

    def project_labels(self, labels: np.ndarray, to_level: int = 0) -> np.ndarray:
        """Expand coarsest-level labels down to ``to_level``.

        ``labels`` must be indexed by coarsest-level nodes; each fine
        node inherits its super-node's label.
        """
        current = np.asarray(labels)
        for level in range(len(self.mappings) - 1, to_level - 1, -1):
            current = current[self.mappings[level]]
        return current


def build_hierarchy(
    adjacency: sp.csr_array,
    rng: np.random.Generator,
    min_nodes: int = 100,
    max_levels: int = 20,
    node_weights: np.ndarray | None = None,
    balance_node_weights: bool = False,
) -> CoarseningHierarchy:
    """Coarsen ``adjacency`` until it has at most ``min_nodes`` nodes.

    Coarsening stops early if a matching pass shrinks the graph by less
    than 10% (star-like graphs cannot be matched much) or after
    ``max_levels`` levels.

    With ``balance_node_weights=True``, matches that would create a
    super-node heavier than ``3 * total / min_nodes`` are skipped, which
    keeps coarsest-level nodes balanced enough for partitioning.
    """
    if min_nodes < 1:
        raise ClusteringError("min_nodes must be >= 1")
    adj = adjacency.tocsr()
    weights = (
        np.ones(adj.shape[0]) if node_weights is None
        else np.asarray(node_weights, dtype=np.float64)
    )
    hierarchy = CoarseningHierarchy(
        graphs=[adj], node_weights=[weights], mappings=[]
    )
    max_node_weight = (
        3.0 * weights.sum() / max(min_nodes, 1)
        if balance_node_weights
        else None
    )
    for _ in range(max_levels):
        current = hierarchy.graphs[-1]
        current_weights = hierarchy.node_weights[-1]
        if current.shape[0] <= min_nodes:
            break
        match = heavy_edge_matching(
            current,
            rng,
            node_weights=current_weights,
            max_node_weight=max_node_weight,
        )
        coarse, coarse_weights, mapping = contract(
            current, match, current_weights
        )
        if coarse.shape[0] > 0.9 * current.shape[0]:
            break  # diminishing returns: nearly nothing matched
        hierarchy.graphs.append(coarse)
        hierarchy.node_weights.append(coarse_weights)
        hierarchy.mappings.append(mapping)
    return hierarchy
