"""Undirected graph clustering algorithms (stage 2 of the framework).

The paper's framework deliberately reuses *existing* undirected graph
clustering algorithms after symmetrization. The three it evaluates are
implemented here from scratch:

- :class:`MLRMCL` — Multi-Level Regularized Markov CLustering
  (Satuluri & Parthasarathy, KDD'09), the authors' own algorithm.
- :class:`MetisClusterer` — METIS-style multilevel k-way partitioning
  via recursive bisection (Karypis & Kumar).
- :class:`GraclusClusterer` — Graclus-style multilevel weighted kernel
  k-means normalized-cut minimization (Dhillon et al.).
- :class:`SpectralClusterer` — Shi–Malik normalized spectral
  clustering, used as an additional reference method.
- :class:`LouvainClusterer` — Louvain modularity maximization, an
  extra stage-2 option demonstrating the framework's plug-anything
  claim (not part of the paper's evaluation).

All algorithms consume an :class:`~repro.graph.UndirectedGraph` and
return a :class:`~repro.cluster.common.Clustering`.
"""

from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    available_clusterers,
    get_clusterer,
    register_clusterer,
)
from repro.cluster.consensus import ConsensusClusterer
from repro.cluster.graclus import GraclusClusterer
from repro.cluster.louvain import LouvainClusterer
from repro.cluster.metis import MetisClusterer
from repro.cluster.mlrmcl import MLRMCL
from repro.cluster.spectral import SpectralClusterer

__all__ = [
    "Clustering",
    "GraphClusterer",
    "get_clusterer",
    "register_clusterer",
    "available_clusterers",
    "MLRMCL",
    "MetisClusterer",
    "GraclusClusterer",
    "SpectralClusterer",
    "LouvainClusterer",
    "ConsensusClusterer",
]
