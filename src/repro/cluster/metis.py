"""METIS-style multilevel k-way graph partitioning.

A from-scratch reimplementation of the algorithmic recipe of Karypis &
Kumar's METIS (the partitioner the paper runs as one of its three
stage-2 clustering algorithms): k-way partitioning by recursive
bisection, where each bisection is multilevel —

1. **Coarsen** by heavy-edge matching until the graph is small
   (:mod:`repro.cluster.coarsen`).
2. **Initial partition** of the coarsest graph by greedy graph growing
   (grow a region by BFS from a seed until half the vertex weight is
   absorbed; keep the best of several seeds).
3. **Uncoarsen**, refining the projected partition at every level with
   Fiduccia–Mattheyses (FM) boundary refinement: tentatively move the
   highest-gain boundary vertices one at a time (each vertex at most
   once per pass), then keep the best prefix of the move sequence.

The objective is the standard METIS one — minimum weighted edge cut
under a balance constraint — which on the symmetrized graphs of the
paper serves the same role as Ncut: METIS "performed comparably" in
their experiments (Figures 6–8, Tables 3–4).
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

from repro.cluster.coarsen import build_hierarchy
from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    register_clusterer,
)
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph

__all__ = ["MetisClusterer"]


def _neighbor_gain(
    adj: sp.csr_array, side: np.ndarray, v: int
) -> float:
    """FM gain of moving ``v`` to the other side: external - internal."""
    start, end = adj.indptr[v], adj.indptr[v + 1]
    gain = 0.0
    for idx in range(start, end):
        u = adj.indices[idx]
        if u == v:
            continue
        if side[u] == side[v]:
            gain -= adj.data[idx]
        else:
            gain += adj.data[idx]
    return gain


def _cut_value(adj: sp.csr_array, side: np.ndarray) -> float:
    """Total weight of edges crossing the bipartition."""
    coo = adj.tocoo()
    crossing = side[coo.row] != side[coo.col]
    return float(coo.data[crossing].sum()) / 2.0


def _greedy_grow(
    adj: sp.csr_array,
    vwgt: np.ndarray,
    target_w0: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy graph growing: BFS-accumulate side 0 up to ``target_w0``.

    Prefers frontier vertices with the strongest connection to the
    grown region. Disconnected graphs restart from a fresh seed.
    """
    n = adj.shape[0]
    side = np.ones(n, dtype=np.int8)
    in_region = np.zeros(n, dtype=bool)
    connection = np.zeros(n)
    weight0 = 0.0
    # (negative connection strength, tie-break, node)
    heap: list[tuple[float, int, int]] = []
    counter = 0

    def push_neighbors(v: int) -> None:
        nonlocal counter
        start, end = adj.indptr[v], adj.indptr[v + 1]
        for idx in range(start, end):
            u = adj.indices[idx]
            if u == v or in_region[u]:
                continue
            connection[u] += adj.data[idx]
            counter += 1
            heapq.heappush(heap, (-connection[u], counter, u))

    remaining = rng.permutation(n)
    remaining_pos = 0
    while weight0 < target_w0:
        if not heap:
            # Seed (or re-seed after exhausting a component).
            while (
                remaining_pos < n and in_region[remaining[remaining_pos]]
            ):
                remaining_pos += 1
            if remaining_pos >= n:
                break
            seed = int(remaining[remaining_pos])
            in_region[seed] = True
            side[seed] = 0
            weight0 += vwgt[seed]
            push_neighbors(seed)
            continue
        neg_conn, _, v = heapq.heappop(heap)
        if in_region[v] or -neg_conn < connection[v]:
            continue  # stale entry
        in_region[v] = True
        side[v] = 0
        weight0 += vwgt[v]
        push_neighbors(v)
    return side


def _fm_refine(
    adj: sp.csr_array,
    vwgt: np.ndarray,
    side: np.ndarray,
    target_w0: float,
    imbalance: float,
    n_passes: int,
) -> np.ndarray:
    """Fiduccia–Mattheyses refinement of a bipartition (in place).

    Runs up to ``n_passes`` passes. In each pass every vertex may move
    at most once; moves are chosen best-gain-first subject to the
    balance window ``[target_w0 / imbalance, target_w0 * imbalance]``
    (widened if the incoming partition is already outside it), and at
    the end of the pass the best prefix of the move sequence is kept.
    """
    n = adj.shape[0]
    total = float(vwgt.sum())
    lo = min(target_w0 / imbalance, target_w0 - 1e-12)
    hi = max(target_w0 * imbalance, target_w0 + 1e-12)
    hi = min(hi, total)
    weight0 = float(vwgt[side == 0].sum())
    # If the incoming partition violates the window, widen it to the
    # current imbalance so refinement can still proceed (moves toward
    # balance are always allowed below).
    lo = min(lo, weight0)
    hi = max(hi, weight0)

    for _ in range(n_passes):
        gains = np.zeros(n)
        is_boundary = np.zeros(n, dtype=bool)
        coo = adj.tocoo()
        off_diag = coo.row != coo.col
        same = side[coo.row] == side[coo.col]
        signed = np.where(same, -coo.data, coo.data)
        signed[~off_diag] = 0.0
        np.add.at(gains, coo.row, signed)
        crossing = off_diag & ~same
        is_boundary[coo.row[crossing]] = True

        heap: list[tuple[float, int, int]] = []
        counter = 0
        for v in np.flatnonzero(is_boundary):
            counter += 1
            heapq.heappush(heap, (-gains[v], counter, int(v)))
        locked = np.zeros(n, dtype=bool)
        in_heap_gain = gains.copy()

        moves: list[int] = []
        cum_gain = 0.0
        best_gain = 0.0
        best_prefix = 0
        w0 = weight0
        # METIS-style limited FM: abort the pass after a streak of
        # non-improving moves — the tail of the move sequence almost
        # never recovers and dominates the cost otherwise.
        max_streak = max(30, n // 20)
        while heap:
            if len(moves) - best_prefix > max_streak:
                break
            neg_gain, _, v = heapq.heappop(heap)
            if locked[v] or -neg_gain != in_heap_gain[v]:
                continue
            new_w0 = w0 - vwgt[v] if side[v] == 0 else w0 + vwgt[v]
            moves_toward_balance = abs(new_w0 - target_w0) < abs(
                w0 - target_w0
            )
            if not (lo <= new_w0 <= hi) and not moves_toward_balance:
                continue
            # Execute the tentative move.
            locked[v] = True
            side[v] = 1 - side[v]
            w0 = new_w0
            cum_gain += in_heap_gain[v]
            moves.append(v)
            if cum_gain > best_gain + 1e-12:
                best_gain = cum_gain
                best_prefix = len(moves)
            # Update unlocked neighbours' gains.
            start, end = adj.indptr[v], adj.indptr[v + 1]
            for idx in range(start, end):
                u = adj.indices[idx]
                if u == v or locked[u]:
                    continue
                w = adj.data[idx]
                if side[u] == side[v]:
                    in_heap_gain[u] -= 2.0 * w
                else:
                    in_heap_gain[u] += 2.0 * w
                counter += 1
                heapq.heappush(heap, (-in_heap_gain[u], counter, int(u)))
        # Roll back moves after the best prefix.
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
            if side[v] == 0:
                w0 += vwgt[v]
            else:
                w0 -= vwgt[v]
        weight0 = float(vwgt[side == 0].sum())
        if best_gain <= 0:
            break
    return side


def _multilevel_bisect(
    adj: sp.csr_array,
    vwgt: np.ndarray,
    frac0: float,
    rng: np.random.Generator,
    coarsen_to: int,
    n_init: int,
    imbalance: float,
    n_passes: int,
) -> np.ndarray:
    """Multilevel bisection; returns a 0/1 side per node."""
    n = adj.shape[0]
    total = float(vwgt.sum())
    target_w0 = frac0 * total
    if n <= 2:
        side = np.ones(n, dtype=np.int8)
        if n >= 1:
            side[0] = 0
        return side
    hierarchy = build_hierarchy(
        adj,
        rng,
        min_nodes=max(coarsen_to, 4),
        node_weights=vwgt,
        balance_node_weights=True,
    )
    coarse = hierarchy.graphs[-1]
    coarse_w = hierarchy.node_weights[-1]
    best_side: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(max(1, n_init)):
        side = _greedy_grow(coarse, coarse_w, target_w0, rng)
        side = _fm_refine(
            coarse, coarse_w, side, target_w0, imbalance, n_passes
        )
        cut = _cut_value(coarse, side)
        if cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    side = best_side
    # Uncoarsen with refinement at every level.
    for level in range(len(hierarchy.mappings) - 1, -1, -1):
        side = side[hierarchy.mappings[level]]
        side = _fm_refine(
            hierarchy.graphs[level],
            hierarchy.node_weights[level],
            side,
            target_w0,
            imbalance,
            n_passes,
        )
    return side


@register_clusterer("metis")
class MetisClusterer(GraphClusterer):
    """Multilevel k-way partitioning by recursive bisection.

    Parameters
    ----------
    imbalance:
        Allowed deviation factor from perfectly proportional part
        weights during each bisection (METIS's load-imbalance
        tolerance). 1.05 allows 5%.
    coarsen_to:
        Stop coarsening each bisection problem at this many nodes.
    n_init:
        Number of greedy-growing seeds tried at the coarsest level.
    n_passes:
        FM refinement passes per level.
    seed:
        Seed of the internal random generator.

    Notes
    -----
    Node weights are the unit weights of the input nodes (balanced
    cardinality parts), as when running stock ``gpmetis`` on the
    paper's symmetrized graphs. Exactly ``n_clusters`` parts are
    returned; parts may be empty only if ``n_clusters > n_nodes``,
    which is rejected upstream.
    """

    def __init__(
        self,
        imbalance: float = 1.05,
        coarsen_to: int = 120,
        n_init: int = 4,
        n_passes: int = 4,
        seed: int = 0,
    ) -> None:
        if imbalance < 1.0:
            raise ClusteringError("imbalance factor must be >= 1.0")
        self.imbalance = float(imbalance)
        self.coarsen_to = int(coarsen_to)
        self.n_init = int(n_init)
        self.n_passes = int(n_passes)
        self.seed = int(seed)

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        if n_clusters is None:
            raise ClusteringError("MetisClusterer requires n_clusters")
        rng = np.random.default_rng(self.seed)
        adj = graph.adjacency.tocsr()
        labels = np.zeros(graph.n_nodes, dtype=np.int64)
        self._recurse(
            adj,
            np.ones(graph.n_nodes),
            np.arange(graph.n_nodes),
            n_clusters,
            0,
            labels,
            rng,
        )
        return Clustering(labels)

    def _recurse(
        self,
        adj: sp.csr_array,
        vwgt: np.ndarray,
        nodes: np.ndarray,
        k: int,
        label_offset: int,
        out_labels: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Recursive bisection of the subgraph on ``nodes``."""
        if k == 1 or nodes.size <= 1:
            out_labels[nodes] = label_offset
            return
        k0 = k // 2
        k1 = k - k0
        frac0 = k0 / k
        side = _multilevel_bisect(
            adj,
            vwgt,
            frac0,
            rng,
            self.coarsen_to,
            self.n_init,
            self.imbalance,
            self.n_passes,
        )
        part0 = np.flatnonzero(side == 0)
        part1 = np.flatnonzero(side == 1)
        # Guarantee non-empty sides so every label appears.
        if part0.size == 0:
            part0, part1 = part1[:1], part1[1:]
        elif part1.size == 0:
            part0, part1 = part0[:-1], part0[-1:]
        for part, sub_k, offset in (
            (part0, k0, label_offset),
            (part1, k1, label_offset + k0),
        ):
            sub_adj = adj[part][:, part].tocsr()
            self._recurse(
                sub_adj,
                vwgt[part],
                nodes[part],
                sub_k,
                offset,
                out_labels,
                rng,
            )
