"""Louvain modularity clustering.

Not part of the paper's evaluation, but included to demonstrate the
framework's central selling point: *any* undirected graph clustering
algorithm can serve as stage 2 (§3, "whichever be the suitable graph
clustering algorithm, it will fit in our framework"). Louvain (Blondel
et al., 2008) is the most widely used modularity maximizer and, unlike
the paper's three algorithms, determines the number of clusters
itself.

Standard two-phase algorithm:

1. **Local moving** — repeatedly move single nodes to the neighbouring
   community with the largest modularity gain until no move improves.
2. **Aggregation** — contract communities into super-nodes and repeat
   on the induced graph, unfolding at the end.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    register_clusterer,
)
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph

__all__ = ["LouvainClusterer", "modularity"]


def modularity(
    adjacency: sp.csr_array, labels: np.ndarray, resolution: float = 1.0
) -> float:
    """Newman modularity of a labelling on a weighted graph.

    ``Q = sum_c [ w_in(c)/W - resolution * (vol(c)/(2W))^2 ]`` with
    ``W`` the total edge weight (each undirected edge counted once,
    self-loops once) and volumes including self-loop weight.
    """
    labels = np.asarray(labels)
    if labels.shape != (adjacency.shape[0],):
        raise ClusteringError("labels must have one entry per node")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    two_w = float(degrees.sum())
    if two_w == 0:
        return 0.0
    coo = adjacency.tocoo()
    same = labels[coo.row] == labels[coo.col]
    internal = float(coo.data[same].sum())  # counts both directions
    k = labels.max() + 1
    volumes = np.zeros(k)
    np.add.at(volumes, labels, degrees)
    return internal / two_w - resolution * float(
        ((volumes / two_w) ** 2).sum()
    )


def _local_moving(
    adjacency: sp.csr_array,
    labels: np.ndarray,
    rng: np.random.Generator,
    resolution: float,
    max_sweeps: int,
) -> bool:
    """Phase 1: greedy single-node moves. Returns True if anything moved."""
    n = adjacency.shape[0]
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    two_w = float(degrees.sum())
    if two_w == 0:
        return False
    volumes = np.zeros(labels.max() + 1 + n)  # room for singleton splits
    np.add.at(volumes, labels, degrees)
    indptr, indices, data = (
        adjacency.indptr,
        adjacency.indices,
        adjacency.data,
    )
    moved_any = False
    for _ in range(max_sweeps):
        moved_this_sweep = False
        for v in rng.permutation(n):
            start, end = indptr[v], indptr[v + 1]
            current = labels[v]
            # Edge weight from v to each neighbouring community.
            community_links: dict[int, float] = {}
            self_weight = 0.0
            for idx in range(start, end):
                u = indices[idx]
                if u == v:
                    self_weight += data[idx]
                    continue
                c = labels[u]
                community_links[c] = community_links.get(c, 0.0) + data[idx]
            volumes[current] -= degrees[v]
            best_community = current
            best_gain = community_links.get(current, 0.0) - (
                resolution * degrees[v] * volumes[current] / two_w
            )
            for c, link in community_links.items():
                if c == current:
                    continue
                gain = link - resolution * degrees[v] * volumes[c] / two_w
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = c
            volumes[best_community] += degrees[v]
            if best_community != current:
                labels[v] = best_community
                moved_this_sweep = True
                moved_any = True
        if not moved_this_sweep:
            break
    return moved_any


def _aggregate(
    adjacency: sp.csr_array, labels: np.ndarray
) -> tuple[sp.csr_array, np.ndarray]:
    """Phase 2: contract communities into super-nodes."""
    unique, compact = np.unique(labels, return_inverse=True)
    k = unique.size
    coo = adjacency.tocoo()
    coarse = sp.coo_array(
        (coo.data, (compact[coo.row], compact[coo.col])), shape=(k, k)
    ).tocsr()
    coarse.sum_duplicates()
    return coarse, compact


@register_clusterer("louvain")
class LouvainClusterer(GraphClusterer):
    """Louvain modularity maximization.

    Parameters
    ----------
    resolution:
        Modularity resolution; > 1 favours more, smaller communities.
        Serves the same role as MLR-MCL's inflation: the cluster count
        is determined by the graph, not requested directly.
    max_sweeps:
        Local-moving sweeps per level.
    max_levels:
        Aggregation levels.
    seed:
        Seed of the node-visit-order generator.

    Notes
    -----
    ``n_clusters`` is accepted for interface compatibility but only
    *advisory*: when given, the resolution is scanned geometrically
    (a few values around ``resolution``) and the run whose community
    count lands closest to the request wins.
    """

    def __init__(
        self,
        resolution: float = 1.0,
        max_sweeps: int = 10,
        max_levels: int = 10,
        seed: int = 0,
    ) -> None:
        if resolution <= 0:
            raise ClusteringError("resolution must be positive")
        self.resolution = float(resolution)
        self.max_sweeps = int(max_sweeps)
        self.max_levels = int(max_levels)
        self.seed = int(seed)

    def _run(
        self, adjacency: sp.csr_array, resolution: float
    ) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        mappings: list[np.ndarray] = []
        current = adjacency
        for _ in range(self.max_levels):
            level_labels = np.arange(current.shape[0])
            moved = _local_moving(
                current, level_labels, rng, resolution, self.max_sweeps
            )
            current, compact = _aggregate(current, level_labels)
            mappings.append(compact)
            if not moved or current.shape[0] == compact.size:
                break  # nothing contracted: fixed point reached
        # Unfold coarsest labels down to the input nodes.
        labels = mappings[-1]
        for mapping in reversed(mappings[:-1]):
            labels = labels[mapping]
        return labels

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        adj = graph.adjacency.tocsr()
        if n_clusters is None:
            return Clustering(self._run(adj, self.resolution))
        # Advisory k: scan a few resolutions, keep the closest count.
        best_labels = None
        best_gap = None
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
            labels = self._run(adj, self.resolution * factor)
            k = np.unique(labels).size
            gap = abs(k - n_clusters)
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best_labels = labels
            if gap == 0:
                break
        assert best_labels is not None
        return Clustering(best_labels)

    def __repr__(self) -> str:
        return f"LouvainClusterer(resolution={self.resolution})"
