"""Multi-Level Regularized Markov CLustering (MLR-MCL).

A from-scratch implementation of Satuluri & Parthasarathy's KDD'09
algorithm — the primary stage-2 clusterer of the paper (it produced the
best peak F-scores on both Cora and Wikipedia, Figures 5–8).

R-MCL iterates a column-stochastic *flow matrix* ``M`` (column ``j`` is
node ``j``'s out-flow distribution), initialized to the canonical
transition matrix ``M_G`` of the graph (with self-loops added for
stability):

1. **Regularize**: ``M := M @ M_G`` — each node's new flow is the
   average of its neighbours' current flows, weighted by ``M_G``. This
   replaces plain MCL's expansion ``M := M**2`` and prevents the
   massive-cluster / fragmentation pathologies of MCL.
2. **Inflate**: raise entries to the power ``r`` column-wise and
   re-normalize, strengthening strong flows. Larger ``r`` yields more,
   smaller clusters — which is why the paper can only *indirectly*
   control MLR-MCL's cluster count (§4.2).
3. **Prune**: drop tiny entries per column to retain sparsity.

At convergence each column is (nearly) concentrated on one *attractor*
row; nodes sharing an attractor (transitively) form a cluster.

The multi-level wrapper coarsens the graph by heavy-edge matching,
runs R-MCL on the coarsest graph, and projects the flow values to each
finer level as the initialization for further R-MCL iterations there —
which is both faster and better-quality than flat R-MCL.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cluster.coarsen import build_hierarchy
from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    register_clusterer,
)
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph
from repro.obs.metrics import metric_inc, metric_set
from repro.obs.trace import span
from repro.perf.stopwatch import add_counters

__all__ = ["MLRMCL"]


def _column_scale(matrix: sp.csc_array, factors: np.ndarray) -> None:
    """In-place multiply each column's data by ``factors[col]``."""
    counts = np.diff(matrix.indptr)
    matrix.data *= np.repeat(factors, counts)


def _column_normalize(matrix: sp.csc_array) -> sp.csc_array:
    """Make every non-empty column sum to 1 (in place; returns input)."""
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    inv = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums != 0)
    _column_scale(matrix, inv)
    return matrix


def _column_max(matrix: sp.csc_array) -> np.ndarray:
    """Per-column maximum entry (0 for empty columns)."""
    n = matrix.shape[1]
    out = np.zeros(n)
    counts = np.diff(matrix.indptr)
    nonempty = np.flatnonzero(counts)
    if nonempty.size == 0:
        return out
    out[nonempty] = np.maximum.reduceat(
        matrix.data, matrix.indptr[nonempty]
    )
    return out


def _prune_columns(
    matrix: sp.csc_array, keep_fraction: float
) -> sp.csc_array:
    """Drop entries below ``keep_fraction`` of their column maximum.

    Assembles the pruned CSC directly from the kept entries — they
    stay in column-major, row-sorted order, so no COO round-trip (and
    its re-sort) is needed.
    """
    if matrix.nnz == 0:
        return matrix
    col_max = _column_max(matrix)
    n_cols = matrix.shape[1]
    counts = np.diff(matrix.indptr)
    thresholds = np.repeat(col_max * keep_fraction, counts)
    keep = matrix.data >= thresholds
    if keep.all():
        return matrix
    kept_counts = np.bincount(
        np.repeat(np.arange(n_cols), counts)[keep], minlength=n_cols
    )
    indptr = np.concatenate(([0], np.cumsum(kept_counts)))
    return sp.csc_array(
        (matrix.data[keep], matrix.indices[keep], indptr),
        shape=matrix.shape,
    )


def _inflate(matrix: sp.csc_array, inflation: float) -> sp.csc_array:
    """Column-wise entry-power then re-normalization."""
    matrix = matrix.copy()
    matrix.data **= inflation
    return _column_normalize(matrix)


def _canonical_flow(
    adjacency: sp.csr_array, self_loop: float
) -> sp.csc_array:
    """Column-stochastic transition matrix ``M_G`` with self-loops.

    The self-loop of each node is ``self_loop`` times its maximum
    incident edge weight (at least a small epsilon for isolated
    nodes), keeping flow retention scale-invariant under edge-weight
    scaling.
    """
    adj = adjacency.tocsr()
    row_max = np.zeros(adj.shape[0])
    counts = np.diff(adj.indptr)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        row_max[nonempty] = np.maximum.reduceat(
            adj.data, adj.indptr[nonempty]
        )
    loops = self_loop * np.maximum(row_max, 1e-12)
    with_loops = (adj + sp.diags_array(loops)).tocsc()
    return _column_normalize(with_loops)


def _attractor_labels(matrix: sp.csc_array) -> np.ndarray:
    """Cluster labels from a converged flow matrix.

    Node ``j`` is attached to its attractor ``argmax_i M[i, j]``; the
    clusters are the weakly connected components of the resulting
    attachment graph (so chains of attractors merge, the standard MCL
    interpretation).
    """
    n = matrix.shape[1]
    attractor = np.arange(n, dtype=np.int64)
    counts = np.diff(matrix.indptr)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        # Segmented argmax, matching np.argmax's first-max tie rule:
        # flag every in-column maximum, then take the first flagged
        # position at or after each column start.
        starts = matrix.indptr[nonempty]
        col_max = np.maximum.reduceat(matrix.data, starts)
        at_max = matrix.data == np.repeat(col_max, counts[nonempty])
        max_positions = np.flatnonzero(at_max)
        firsts = max_positions[
            np.searchsorted(max_positions, starts)
        ]
        attractor[nonempty] = matrix.indices[firsts]
    attach = sp.coo_array(
        (np.ones(n), (np.arange(n), attractor)), shape=(n, n)
    )
    _, labels = sp.csgraph.connected_components(
        attach, directed=True, connection="weak"
    )
    return labels


def _rmcl_iterations(
    flow: sp.csc_array,
    m_g: sp.csc_array,
    inflation: float,
    n_iter: int,
    prune_fraction: float,
    stop_at_k: int | None = None,
) -> sp.csc_array:
    """Run up to ``n_iter`` R-MCL iterations.

    The regularized flow coarsens monotonically as it iterates (each
    round merges attractor basins), so iteration count doubles as a
    granularity knob. Iterations stop early when

    - the attractor labelling is stable across two rounds (the flow's
      natural plateau — structure boundaries the walk cannot cross), or
    - ``stop_at_k`` is given and the attractor count has decayed to at
      most that many clusters (*curtailed* R-MCL: the caller wants
      that granularity, so further coarsening only loses clusters).
    """
    prev_labels = None
    performed = 0
    entries_seen = 0
    entries_pruned = 0
    for _ in range(n_iter):
        flow = (flow @ m_g).tocsc()  # regularize
        flow = _inflate(flow, inflation)
        nnz_pre_prune = flow.nnz
        flow = _prune_columns(flow, prune_fraction)
        entries_seen += nnz_pre_prune
        entries_pruned += nnz_pre_prune - flow.nnz
        flow = _column_normalize(flow)
        performed += 1
        labels = _attractor_labels(flow)
        if stop_at_k is not None:
            n_clusters = np.unique(labels).size
            if n_clusters <= stop_at_k:
                break
        if prev_labels is not None and np.array_equal(labels, prev_labels):
            break
        prev_labels = labels
    add_counters(
        "cluster:mlrmcl", rmcl_iterations=performed, flow_nnz=flow.nnz
    )
    metric_inc("mcl_iterations", performed)
    metric_inc("mcl_entries_pruned_total", entries_pruned)
    metric_set("mcl_final_flow_nnz", flow.nnz)
    # Gauge semantics (last write wins) make this the *finest-level*
    # prune fraction once the multi-level wrapper finishes — the
    # figure that explains per-iteration cost in the bench output.
    metric_set(
        "mcl_prune_fraction",
        entries_pruned / entries_seen if entries_seen else 0.0,
    )
    return flow


@register_clusterer("mlrmcl")
class MLRMCL(GraphClusterer):
    """Multi-Level Regularized Markov CLustering.

    Parameters
    ----------
    inflation:
        Inflation exponent ``r``; larger gives more, smaller clusters.
        The paper's experiments sweep this to vary the cluster count.
    coarsen_to:
        Coarsen the graph to at most this many nodes before running
        R-MCL at the coarsest level.
    iterations_coarse:
        R-MCL iterations at the coarsest level.
    iterations_per_level:
        R-MCL iterations at each intermediate level while uncoarsening.
    iterations_finest:
        Iteration budget at the finest (input) level.
    prune_fraction:
        Per-column pruning: entries below this fraction of the column
        maximum are dropped each iteration.
    self_loop:
        Self-loop strength in the canonical transition matrix.
    seed:
        Seed of the coarsening random generator.

    Notes
    -----
    Cluster-count control: the regularized flow coarsens monotonically
    as it iterates, so when ``cluster()`` is called *with* a target
    ``n_clusters``, iterations are curtailed once the attractor count
    decays to the target — the granularity remains only indirectly
    controlled (the result can overshoot in either direction, §4.2 of
    the paper), but lands near the request on graphs with real
    structure. Without a target, iterations run to the flow's natural
    plateau.
    """

    def __init__(
        self,
        inflation: float = 2.0,
        coarsen_to: int = 1000,
        iterations_coarse: int = 30,
        iterations_per_level: int = 5,
        iterations_finest: int = 40,
        prune_fraction: float = 0.01,
        self_loop: float = 1.0,
        seed: int = 0,
    ) -> None:
        if inflation <= 1.0:
            raise ClusteringError("inflation must be > 1")
        if not 0 <= prune_fraction < 1:
            raise ClusteringError("prune_fraction must lie in [0, 1)")
        self.inflation = float(inflation)
        self.coarsen_to = int(coarsen_to)
        self.iterations_coarse = int(iterations_coarse)
        self.iterations_per_level = int(iterations_per_level)
        self.iterations_finest = int(iterations_finest)
        self.prune_fraction = float(prune_fraction)
        self.self_loop = float(self_loop)
        self.seed = int(seed)

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        rng = np.random.default_rng(self.seed)
        adj = graph.adjacency.tocsr()
        with span("coarsen") as sp_:
            hierarchy = build_hierarchy(
                adj, rng, min_nodes=self.coarsen_to
            )
            sp_.set(levels=len(hierarchy.graphs))
        # Coarsest level: start from the canonical flow itself. The
        # coarse run is curtailed well above the target granularity so
        # the fine levels keep room to refine *and* coarsen.
        coarse_stop = None if n_clusters is None else 4 * n_clusters
        m_g = _canonical_flow(hierarchy.graphs[-1], self.self_loop)
        with span("rmcl:coarsest") as sp_:
            flow = _rmcl_iterations(
                m_g.copy(),
                m_g,
                self.inflation,
                self.iterations_coarse,
                self.prune_fraction,
                stop_at_k=coarse_stop,
            )
            sp_.set(n_nodes=m_g.shape[0], flow_nnz=flow.nnz)
        for level in range(len(hierarchy.mappings) - 1, -1, -1):
            mapping = hierarchy.mappings[level]
            n_fine = mapping.size
            # Project flow: fine node inherits its super-node's column
            # and rows expand to all fine members of each coarse row.
            S = sp.csr_array(
                (
                    np.ones(n_fine),
                    (np.arange(n_fine), mapping),
                ),
                shape=(n_fine, flow.shape[0]),
            )
            flow = (S @ flow @ S.T).tocsc()
            flow = _column_normalize(flow)
            m_g = _canonical_flow(hierarchy.graphs[level], self.self_loop)
            n_iter = (
                self.iterations_finest
                if level == 0
                else self.iterations_per_level
            )
            stop = n_clusters if level == 0 else coarse_stop
            with span(f"rmcl:level[{level}]") as sp_:
                flow = _rmcl_iterations(
                    flow,
                    m_g,
                    self.inflation,
                    n_iter,
                    self.prune_fraction,
                    stop_at_k=stop,
                )
                sp_.set(n_nodes=n_fine, flow_nnz=flow.nnz)
        return Clustering(_attractor_labels(flow))

    def __repr__(self) -> str:
        return f"MLRMCL(inflation={self.inflation})"
