"""Normalized-cut spectral clustering (Shi & Malik, 2000).

Used as an additional reference stage-2 algorithm and as the shared
machinery for the directed spectral baselines in :mod:`repro.directed`:
embed the nodes with the top eigenvectors of the normalized adjacency
``D^{-1/2} W D^{-1/2}`` and discretize with k-means on the
row-normalized embedding (the Ng–Jordan–Weiss variant of the
discretization step).

Spectral methods are quality-competitive but scale poorly — the
eigensolve dominates — which is exactly the scalability argument the
paper makes against directed spectral clustering (§2.1, §5.2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cluster.common import (
    Clustering,
    GraphClusterer,
    register_clusterer,
)
from repro.cluster.kmeans import kmeans
from repro.exceptions import ClusteringError
from repro.graph.ugraph import UndirectedGraph
from repro.obs.metrics import metric_set
from repro.obs.trace import span

__all__ = ["SpectralClusterer", "spectral_embedding", "discretize_embedding"]


def spectral_embedding(
    matrix: sp.csr_array,
    n_components: int,
    dense_cutoff: int = 1500,
    seed: int = 0,
) -> np.ndarray:
    """Top eigenvectors of a symmetric matrix.

    Uses a dense ``eigh`` below ``dense_cutoff`` nodes (sparse Lanczos
    is unreliable for tiny or disconnected problems) and ARPACK's
    ``eigsh`` above it. Returns an ``(n, n_components)`` array of the
    eigenvectors with the ``n_components`` largest eigenvalues.
    """
    n = matrix.shape[0]
    if n_components < 1:
        raise ClusteringError("n_components must be >= 1")
    n_components = min(n_components, n)
    if n <= dense_cutoff or n_components >= n - 1:
        dense = np.asarray(matrix.todense())
        dense = (dense + dense.T) / 2.0
        eigvals, eigvecs = np.linalg.eigh(dense)
        return eigvecs[:, -n_components:]
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    eigvals, eigvecs = spla.eigsh(
        matrix, k=n_components, which="LA", v0=v0
    )
    order = np.argsort(eigvals)
    return eigvecs[:, order]


def discretize_embedding(
    embedding: np.ndarray,
    k: int,
    seed: int = 0,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Row-normalize an embedding and cluster rows with k-means."""
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    points = embedding / norms
    rng = np.random.default_rng(seed)
    return kmeans(points, k, rng=rng, weights=weights)


@register_clusterer("spectral")
class SpectralClusterer(GraphClusterer):
    """Shi–Malik normalized spectral clustering.

    Parameters
    ----------
    dense_cutoff:
        Below this node count the eigenproblem is solved densely.
    seed:
        Seed for the eigensolver starting vector and k-means.
    """

    def __init__(self, dense_cutoff: int = 1500, seed: int = 0) -> None:
        self.dense_cutoff = int(dense_cutoff)
        self.seed = int(seed)

    def _cluster(
        self, graph: UndirectedGraph, n_clusters: int | None
    ) -> Clustering:
        if n_clusters is None:
            raise ClusteringError("SpectralClusterer requires n_clusters")
        adj = graph.adjacency.tocsr()
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = np.divide(
            1.0,
            np.sqrt(degrees),
            out=np.zeros_like(degrees),
            where=degrees > 0,
        )
        D = sp.diags_array(inv_sqrt)
        normalized = (D @ adj @ D).tocsr()
        with span("spectral:embedding") as sp_:
            embedding = spectral_embedding(
                normalized,
                n_clusters,
                dense_cutoff=self.dense_cutoff,
                seed=self.seed,
            )
            sp_.set(
                n_nodes=normalized.shape[0],
                n_components=embedding.shape[1],
            )
        metric_set("spectral_n_components", embedding.shape[1])
        with span("spectral:discretize"):
            labels = discretize_embedding(
                embedding, n_clusters, seed=self.seed
            )
        return Clustering(labels)
