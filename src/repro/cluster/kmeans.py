"""K-means with k-means++ seeding, on dense embeddings.

Used as the final step of the spectral methods (Shi–Malik, Zhou et
al., Meila–Pentney WCut): eigenvector rows are embedded points and
k-means recovers the discrete clustering. Supports per-point weights,
which the WCut algorithms need (points are weighted by their volume).
Implemented on numpy only — no sklearn dependency.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError

__all__ = ["kmeans", "kmeans_plus_plus_init"]


def kmeans_plus_plus_init(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++ seeding: returns ``k`` initial centroids.

    Each subsequent centroid is sampled with probability proportional
    to (weighted) squared distance from the nearest chosen centroid.
    """
    n = points.shape[0]
    if k > n:
        raise ClusteringError(f"k={k} exceeds number of points {n}")
    if weights is None:
        weights = np.ones(n)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    probs = weights / weights.sum()
    first = rng.choice(n, p=probs)
    centroids[0] = points[first]
    sq_dist = ((points - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        scores = sq_dist * weights
        total = scores.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids;
            # fill with uniformly random picks.
            idx = rng.choice(n)
        else:
            idx = rng.choice(n, p=scores / total)
        centroids[c] = points[idx]
        new_dist = ((points - centroids[c]) ** 2).sum(axis=1)
        np.minimum(sq_dist, new_dist, out=sq_dist)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    weights: np.ndarray | None = None,
    n_init: int = 5,
    max_iter: int = 100,
    tol: float = 1e-7,
) -> np.ndarray:
    """Weighted Lloyd's k-means with k-means++ restarts.

    Parameters
    ----------
    points:
        ``(n, d)`` array of embedded points.
    k:
        Number of clusters.
    rng:
        Random generator (a fixed default seed if omitted).
    weights:
        Optional non-negative per-point weights.
    n_init:
        Number of k-means++ restarts; the labelling with the lowest
        weighted inertia wins.
    max_iter, tol:
        Lloyd iteration budget / relative inertia improvement floor.

    Returns
    -------
    Integer label array of length ``n``. Empty clusters are re-seeded
    from the point farthest from its centroid, so exactly ``k``
    clusters are returned whenever ``n >= k``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ClusteringError("points must be a 2-D array")
    n = points.shape[0]
    if k < 1:
        raise ClusteringError("k must be >= 1")
    if k > n:
        raise ClusteringError(f"k={k} exceeds number of points {n}")
    if rng is None:
        rng = np.random.default_rng(0)
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ClusteringError("weights must have one entry per point")
        if weights.min() < 0:
            raise ClusteringError("weights must be non-negative")
        if weights.sum() == 0:
            weights = np.ones(n)

    best_labels: np.ndarray | None = None
    best_inertia = np.inf
    for _ in range(max(1, n_init)):
        labels, inertia = _lloyd(points, k, rng, weights, max_iter, tol)
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels
    assert best_labels is not None
    return best_labels


def _lloyd(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, float]:
    """One k-means run; returns ``(labels, weighted inertia)``."""
    centroids = kmeans_plus_plus_init(points, k, rng, weights)
    prev_inertia = np.inf
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for _ in range(max_iter):
        # Squared distances to every centroid: ||x||^2 - 2 x.c + ||c||^2
        cross = points @ centroids.T
        sq_c = (centroids**2).sum(axis=1)
        dist = sq_c[None, :] - 2.0 * cross  # ||x||^2 constant in argmin
        labels = dist.argmin(axis=1)
        full_dist = dist + (points**2).sum(axis=1, keepdims=True)
        inertia = float(
            (weights * full_dist[np.arange(points.shape[0]), labels]).sum()
        )
        # Update step (weighted means); re-seed empty clusters.
        for c in range(k):
            mask = labels == c
            w_sum = weights[mask].sum()
            if w_sum > 0:
                centroids[c] = (
                    weights[mask, None] * points[mask]
                ).sum(axis=0) / w_sum
            else:
                farthest = int(
                    np.argmax(
                        full_dist[np.arange(points.shape[0]), labels]
                    )
                )
                centroids[c] = points[farthest]
                labels[farthest] = c
        if prev_inertia - inertia <= tol * max(abs(prev_inertia), 1.0):
            break
        prev_inertia = inertia
    return labels, inertia
