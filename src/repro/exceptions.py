"""Exception and warning hierarchy for the :mod:`repro` library.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except ReproError`` clause while letting programming errors
(``TypeError`` from misuse of numpy, etc.) propagate.

Warnings emitted by the library — the *lenient* channel of the
validation subsystem (:mod:`repro.validate`) — derive from
:class:`ReproWarning` so they can be filtered, promoted to errors with
``warnings.simplefilter("error", ReproWarning)``, or collected by the
pipeline's structured warnings channel without touching third-party
warnings.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "ValidationError",
    "SymmetrizationError",
    "ClusteringError",
    "ConvergenceError",
    "EvaluationError",
    "DatasetError",
    "PipelineError",
    "ReproWarning",
    "ValidationWarning",
    "DegenerateGraphWarning",
    "RepairWarning",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or operation (e.g. non-square matrix)."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed (bad edge list, bad METIS header)."""


class ValidationError(GraphError):
    """A graph failed the invariant checks of :mod:`repro.validate`.

    Carries the offending :class:`repro.validate.ValidationReport` on
    the ``report`` attribute when raised by the validation subsystem.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class SymmetrizationError(ReproError):
    """A symmetrization could not be computed or was misconfigured."""


class ClusteringError(ReproError):
    """A clustering algorithm received invalid input (e.g. k > n)."""


class ConvergenceError(ClusteringError):
    """An iterative method failed to converge within its iteration budget."""


class EvaluationError(ReproError):
    """Evaluation was asked to compare incompatible clusterings/labels."""


class DatasetError(ReproError):
    """A synthetic dataset generator was given unsatisfiable parameters."""


class PipelineError(ReproError):
    """The symmetrize-cluster pipeline was misconfigured or could not
    recover from a degenerate input, even in lenient mode."""


# ---------------------------------------------------------------------------
# Warnings (the lenient channel)
# ---------------------------------------------------------------------------


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by the repro library.

    Subclasses carry a machine-readable ``code`` so the pipeline's
    structured warnings channel can aggregate them without parsing
    messages.
    """

    #: Machine-readable identifier, e.g. ``"all_dangling"``.
    code: str = "generic"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class ValidationWarning(ReproWarning):
    """A non-fatal invariant violation (dangling nodes, self-loops...)."""

    code = "validation"


class DegenerateGraphWarning(ReproWarning):
    """A stage received or produced a degenerate graph (e.g. the
    all-dangling random-walk case) and continued in lenient mode."""

    code = "degenerate"


class RepairWarning(ReproWarning):
    """A malformed input was repaired (entries dropped or clamped)."""

    code = "repaired"


class ConvergenceWarning(ReproWarning):
    """An iterative method stopped short of its tolerance and returned
    its best iterate instead of raising :class:`ConvergenceError`."""

    code = "no_convergence"
