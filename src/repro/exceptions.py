"""Exception and warning hierarchy for the :mod:`repro` library.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except ReproError`` clause while letting programming errors
(``TypeError`` from misuse of numpy, etc.) propagate.

Warnings emitted by the library — the *lenient* channel of the
validation subsystem (:mod:`repro.validate`) — derive from
:class:`ReproWarning` so they can be filtered, promoted to errors with
``warnings.simplefilter("error", ReproWarning)``, or collected by the
pipeline's structured warnings channel without touching third-party
warnings.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "ValidationError",
    "SymmetrizationError",
    "ClusteringError",
    "ConvergenceError",
    "EvaluationError",
    "DatasetError",
    "StorageError",
    "PipelineError",
    "TuningError",
    "TransientError",
    "WorkerCrashError",
    "FaultInjected",
    "BudgetExceeded",
    "ServiceOverloaded",
    "ReproWarning",
    "ValidationWarning",
    "DegenerateGraphWarning",
    "RepairWarning",
    "ConvergenceWarning",
    "ExecutionWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or operation (e.g. non-square matrix)."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed (bad edge list, bad METIS header)."""


class ValidationError(GraphError):
    """A graph failed the invariant checks of :mod:`repro.validate`.

    Carries the offending :class:`repro.validate.ValidationReport` on
    the ``report`` attribute when raised by the validation subsystem.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class SymmetrizationError(ReproError):
    """A symmetrization could not be computed or was misconfigured."""


class ClusteringError(ReproError):
    """A clustering algorithm received invalid input (e.g. k > n)."""


class ConvergenceError(ClusteringError):
    """An iterative method failed to converge within its iteration budget."""


class EvaluationError(ReproError):
    """Evaluation was asked to compare incompatible clusterings/labels."""


class DatasetError(ReproError):
    """A synthetic dataset generator was given unsatisfiable parameters."""


class StorageError(ReproError):
    """An out-of-core store (:mod:`repro.linalg.mmcsr`) is missing,
    incomplete, or inconsistent — e.g. opening the scratch directory
    left behind by a crashed build, or a row window out of range."""


class PipelineError(ReproError):
    """The symmetrize-cluster pipeline was misconfigured or could not
    recover from a degenerate input, even in lenient mode."""


class TuningError(ReproError):
    """The autotuning subsystem (:mod:`repro.tune`) was misconfigured
    or a persisted cost model (``tuning/model.json``) is corrupt or of
    an unsupported schema. Raised on the strict path; the lenient path
    degrades to a :class:`RepairWarning` with code
    ``"tuning_model_invalid"`` and falls back to the default plan."""


class TransientError(ReproError):
    """A failure that may succeed on re-execution (a flaky worker, a
    saturated resource, an injected chaos fault).

    The default :class:`repro.engine.RetryPolicy` retries exactly this
    class; deterministic failures (bad input, misconfiguration) derive
    from other :class:`ReproError` branches and are never retried.
    """


class WorkerCrashError(TransientError):
    """A parallel worker process died (OOM-killed, SIGKILL, segfault)
    before returning its result.

    Raised by :mod:`repro.linalg.allpairs` when a process-pool worker
    disappears and in-process re-execution of its blocks also fails.
    """


class FaultInjected(TransientError):
    """An artificial failure raised by the chaos harness
    (:mod:`repro.engine.chaos`). Transient by design so retry and
    recovery paths can be exercised deterministically in tests."""


class BudgetExceeded(ReproError):
    """A stage or plan overran its :class:`repro.engine.Budget`.

    Structured: ``scope`` names what overran (a stage name or
    ``"plan"``), ``resource`` is ``"wall_s"`` or ``"mem_bytes"``, and
    ``limit``/``spent`` quantify the overrun. Budget overruns are
    deterministic with respect to the work attempted, so they are
    *not* retried; lenient sweep drivers degrade them to a skipped
    point with a structured warning instead.
    """

    def __init__(
        self,
        scope: str,
        resource: str,
        limit: float,
        spent: float,
    ) -> None:
        unit = "s" if resource == "wall_s" else " bytes"
        super().__init__(
            f"{scope} exceeded its {resource} budget: spent "
            f"{spent:.6g}{unit} of {limit:.6g}{unit}"
        )
        self.scope = scope
        self.resource = resource
        self.limit = limit
        self.spent = spent


class ServiceOverloaded(ReproError):
    """The service shed a request under overload (HTTP 503).

    Raised by the job manager's admission control when the queue is
    at its bound, and re-raised client-side from the structured 503
    body. ``retry_after_s`` is the server's suggested backoff — the
    hardened :class:`~repro.service.ServiceClient` honours it.
    """

    def __init__(
        self,
        message: str = "service overloaded; retry later",
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


# ---------------------------------------------------------------------------
# Warnings (the lenient channel)
# ---------------------------------------------------------------------------


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by the repro library.

    Subclasses carry a machine-readable ``code`` so the pipeline's
    structured warnings channel can aggregate them without parsing
    messages.
    """

    #: Machine-readable identifier, e.g. ``"all_dangling"``.
    code: str = "generic"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class ValidationWarning(ReproWarning):
    """A non-fatal invariant violation (dangling nodes, self-loops...)."""

    code = "validation"


class DegenerateGraphWarning(ReproWarning):
    """A stage received or produced a degenerate graph (e.g. the
    all-dangling random-walk case) and continued in lenient mode."""

    code = "degenerate"


class RepairWarning(ReproWarning):
    """A malformed input was repaired (entries dropped or clamped)."""

    code = "repaired"


class ConvergenceWarning(ReproWarning):
    """An iterative method stopped short of its tolerance and returned
    its best iterate instead of raising :class:`ConvergenceError`."""

    code = "no_convergence"


class ExecutionWarning(ReproWarning):
    """The fault-tolerant execution runtime degraded gracefully.

    Codes in use: ``stage_retried`` (a transient stage failure was
    retried), ``point_failed`` (a lenient sweep skipped a failed grid
    point), ``worker_crash`` (a dead process-pool worker's blocks were
    re-executed in-process), ``journal_write_failed`` (journaling was
    disabled after an unwritable append, e.g. ENOSPC),
    ``journal_truncated`` (a partial trailing record from a crash
    mid-append was skipped on read), ``cache_orphan`` (a
    meta-without-artifact cache entry from a crash mid-put was
    dropped), ``resume_mismatch`` (a journal record did not match the
    plan being resumed and was ignored), ``store_degraded`` (the
    service store flipped read-only after a write failure or the
    disk-space watchdog tripped), ``job_rerun`` (a recovering service
    daemon re-submitted an incomplete job from its tombstone).
    """

    code = "execution"
