"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except ReproError`` clause while letting programming errors
(``TypeError`` from misuse of numpy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "SymmetrizationError",
    "ClusteringError",
    "ConvergenceError",
    "EvaluationError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or operation (e.g. non-square matrix)."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed (bad edge list, bad METIS header)."""


class SymmetrizationError(ReproError):
    """A symmetrization could not be computed or was misconfigured."""


class ClusteringError(ReproError):
    """A clustering algorithm received invalid input (e.g. k > n)."""


class ConvergenceError(ClusteringError):
    """An iterative method failed to converge within its iteration budget."""


class EvaluationError(ReproError):
    """Evaluation was asked to compare incompatible clusterings/labels."""


class DatasetError(ReproError):
    """A synthetic dataset generator was given unsatisfiable parameters."""
