"""Synthetic stand-ins for the paper's four datasets (§4.1, Table 1).

The paper evaluates on Wikipedia (1.13M nodes), Cora (17.6k), Flickr
(1.86M) and LiveJournal (5.28M). Those corpora are not redistributable
here, so this package generates scaled-down synthetic graphs that
reproduce the *properties the paper's analysis depends on* — power-law
degrees, hub nodes, reciprocity levels, overlapping/partial ground
truth, and Figure-1-style shared-neighbour clusters. See DESIGN.md §2
for the substitution rationale, and :mod:`repro.datasets.motifs` for
the Figure-1 / Guzmania case-study graphs.
"""

from repro.datasets.degenerate import (
    DegenerateCase,
    degenerate_case,
    degenerate_corpus,
)
from repro.datasets.motifs import guzmania_motif
from repro.datasets.storage import load_dataset, save_dataset
from repro.datasets.synthetic import (
    Dataset,
    make_cora_like,
    make_flickr_like,
    make_livejournal_like,
    make_wikipedia_like,
)

__all__ = [
    "Dataset",
    "make_cora_like",
    "make_wikipedia_like",
    "make_flickr_like",
    "make_livejournal_like",
    "guzmania_motif",
    "save_dataset",
    "load_dataset",
    "DegenerateCase",
    "degenerate_corpus",
    "degenerate_case",
]
