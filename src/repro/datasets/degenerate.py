"""A corpus of pathological directed graphs for fault injection.

Every case here is a shape the real datasets of the paper actually
contain — dangling pages in Wikipedia, isolated authors in Cora,
hub-dominated stars in the Mislove et al. social networks — or a
malformed-weight condition that sneaks past naive parsers (``nan``
parses via ``float()``). The fault-injection suite
(``tests/test_fault_injection.py``) sweeps this corpus through every
symmetrization x pruning x clusterer combination and asserts that each
run either raises a typed :class:`~repro.exceptions.ReproError`, or
repairs-with-warnings into a valid clustering — never a bare
scipy/numpy traceback and never a silent all-zero symmetrization.

Cases with malformed weights are constructed with ``validate=False``,
exactly the way a buggy caller or a corrupted cache file would smuggle
them past the constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DirectedGraph

__all__ = ["DegenerateCase", "degenerate_corpus", "degenerate_case"]


@dataclass(frozen=True)
class DegenerateCase:
    """One adversarial input with metadata for the harness.

    Attributes
    ----------
    name:
        Stable identifier, usable as a pytest parameter id.
    description:
        What is pathological about the graph.
    make:
        Zero-argument factory returning a fresh
        :class:`~repro.graph.DirectedGraph` (malformed cases build
        with ``validate=False``).
    malformed:
        True when the *weights* are invalid (NaN/inf/negative) — the
        cases strict mode must reject and lenient mode must repair.
    tie_threshold:
        For the near-threshold-tie case: a prune threshold that some
        degree-discounted similarity ties *exactly*; ``None``
        elsewhere.
    """

    name: str
    description: str
    make: Callable[[], DirectedGraph] = field(compare=False)
    malformed: bool = False
    tie_threshold: float | None = None

    def build(self) -> DirectedGraph:
        """A fresh instance of the pathological graph."""
        return self.make()


def _matrix_graph(rows, cols, vals, n) -> DirectedGraph:
    adj = sp.coo_array(
        (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
    ).tocsr()
    return DirectedGraph(adj, validate=False)


def _empty() -> DirectedGraph:
    return DirectedGraph.empty(0)


def _single_node() -> DirectedGraph:
    return DirectedGraph.empty(1)


def _single_self_loop() -> DirectedGraph:
    return DirectedGraph([[1.0]], validate=False)


def _all_dangling() -> DirectedGraph:
    # Every node has out-degree (and in-degree) zero: P = 0 and the
    # random-walk symmetrization is identically zero.
    return DirectedGraph.empty(8)


def _self_loop_only() -> DirectedGraph:
    n = 6
    return _matrix_graph(range(n), range(n), np.ones(n), n)


def _star_hub_out() -> DirectedGraph:
    # Hub 0 points at 9 leaves; every leaf is dangling.
    edges = [(0, i) for i in range(1, 10)]
    return DirectedGraph.from_edges(edges, n_nodes=10)


def _star_hub_in() -> DirectedGraph:
    # 9 leaves all point at hub 0; the hub is dangling.
    edges = [(i, 0) for i in range(1, 10)]
    return DirectedGraph.from_edges(edges, n_nodes=10)


def _duplicate_heavy() -> DirectedGraph:
    # Every edge of a small two-fan motif repeated five times; CSR
    # construction sums duplicates, quintupling every weight.
    base = [(0, 2), (1, 2), (3, 5), (4, 5), (2, 5)]
    return DirectedGraph.from_edges(base * 5, n_nodes=6)


def _nan_weight() -> DirectedGraph:
    return _matrix_graph(
        [0, 1, 2, 3], [1, 2, 3, 0], [1.0, np.nan, 1.0, 1.0], 4
    )


def _inf_weight() -> DirectedGraph:
    return _matrix_graph(
        [0, 1, 2, 3], [1, 2, 3, 0], [1.0, np.inf, 1.0, 1.0], 4
    )


def _negative_weight() -> DirectedGraph:
    return _matrix_graph(
        [0, 1, 2, 3], [1, 2, 3, 0], [1.0, -2.0, 1.0, 1.0], 4
    )


def _disconnected_with_singletons() -> DirectedGraph:
    # Two directed triangles plus four fully isolated vertices.
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    return DirectedGraph.from_edges(edges, n_nodes=10)


def _near_threshold_tie() -> DirectedGraph:
    # Nodes 0 and 1 both (and only) point at node 2, so with
    # alpha = beta = 0.5 their degree-discounted similarity is exactly
    # d_in(2)^-1/2 = 2^-0.5 — tie the prune threshold at that value and
    # the pair must survive in both the exact and the pruned path.
    edges = [(0, 2), (1, 2), (3, 5), (4, 5)]
    return DirectedGraph.from_edges(edges, n_nodes=6)


def _reciprocal_pair() -> DirectedGraph:
    # A single 2-cycle: the smallest strongly-connected structure,
    # with every other similarity empty.
    return DirectedGraph.from_edges([(0, 1), (1, 0)], n_nodes=2)


_CORPUS: tuple[DegenerateCase, ...] = (
    DegenerateCase(
        "empty",
        "zero nodes, zero edges",
        _empty,
    ),
    DegenerateCase(
        "single_node",
        "one node, no edges",
        _single_node,
    ),
    DegenerateCase(
        "single_self_loop",
        "one node whose only edge is a self-loop",
        _single_self_loop,
    ),
    DegenerateCase(
        "all_dangling",
        "8 nodes, no edges: every node dangling, P = 0",
        _all_dangling,
    ),
    DegenerateCase(
        "self_loop_only",
        "6 nodes whose only edges are self-loops",
        _self_loop_only,
    ),
    DegenerateCase(
        "star_hub_out",
        "hub points at 9 dangling leaves",
        _star_hub_out,
    ),
    DegenerateCase(
        "star_hub_in",
        "9 leaves point at one dangling hub",
        _star_hub_in,
    ),
    DegenerateCase(
        "duplicate_heavy",
        "every edge appears five times (weights sum)",
        _duplicate_heavy,
    ),
    DegenerateCase(
        "nan_weight",
        "one edge weight is NaN (validate=False construction)",
        _nan_weight,
        malformed=True,
    ),
    DegenerateCase(
        "inf_weight",
        "one edge weight is +inf",
        _inf_weight,
        malformed=True,
    ),
    DegenerateCase(
        "negative_weight",
        "one edge weight is negative",
        _negative_weight,
        malformed=True,
    ),
    DegenerateCase(
        "disconnected_with_singletons",
        "two directed 3-cycles plus four isolated vertices",
        _disconnected_with_singletons,
    ),
    DegenerateCase(
        "near_threshold_tie",
        "a degree-discounted similarity ties the prune threshold "
        "exactly (2^-0.5)",
        _near_threshold_tie,
        tie_threshold=float(2.0 ** -0.5),
    ),
    DegenerateCase(
        "reciprocal_pair",
        "a single 2-cycle between two nodes",
        _reciprocal_pair,
    ),
)


def degenerate_corpus(
    include_malformed: bool = True,
) -> list[DegenerateCase]:
    """The full corpus of pathological graphs (fresh copies).

    Pass ``include_malformed=False`` to keep only structurally
    degenerate but well-formed graphs (finite non-negative weights) —
    the set that must flow through every symmetrization without typed
    errors.
    """
    return [
        case
        for case in _CORPUS
        if include_malformed or not case.malformed
    ]


def degenerate_case(name: str) -> DegenerateCase:
    """Look up one corpus case by name."""
    for case in _CORPUS:
        if case.name == name:
            return case
    known = ", ".join(c.name for c in _CORPUS)
    raise KeyError(f"unknown degenerate case {name!r}; known: {known}")
