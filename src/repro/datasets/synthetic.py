"""Synthetic dataset builders mirroring the paper's four corpora.

Each builder composes the primitives of :mod:`repro.graph.generators`
so that the paper's qualitative phenomena are present:

- **cora-like** (citation): clusters signalled mainly by *shared
  references and shared citers* (papers of a field cite the same
  seminal papers), sparse direct intra-field citations, globally-cited
  "classic" hub papers, ~8% reciprocity, 20% unlabeled nodes.
- **wikipedia-like** (hyperlink): overlapping categories, 35%
  unlabeled, ~42% reciprocity, strong hub pages pointed to from
  everywhere, and planted Figure-1-style "list pattern" clusters
  (members share in/out-links without interlinking).
- **flickr-like** / **livejournal-like** (social): scalability-only
  graphs — power-law degrees, many weak communities, reciprocity
  62% / 73%, no ground truth (as in the paper).

Node counts are scaled-down defaults; pass ``scale`` to grow or shrink
everything proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DatasetError
from repro.eval.groundtruth import GroundTruth
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import (
    add_global_hubs,
    directed_sbm,
    power_law_digraph,
    reciprocate_edges,
    shared_neighbor_clusters,
)

__all__ = [
    "Dataset",
    "make_cora_like",
    "make_wikipedia_like",
    "make_flickr_like",
    "make_livejournal_like",
]


@dataclass(frozen=True)
class Dataset:
    """A named directed graph with optional ground truth.

    Attributes
    ----------
    name:
        Short dataset identifier (``"cora-like"`` etc.).
    graph:
        The directed graph.
    ground_truth:
        Category assignments, or ``None`` for the scalability-only
        datasets (Flickr/LiveJournal have no ground truth in the paper
        either).
    description:
        One-line provenance note.
    """

    name: str
    graph: DirectedGraph
    ground_truth: GroundTruth | None
    description: str

    @property
    def n_nodes(self) -> int:
        """Node count of the graph."""
        return self.graph.n_nodes

    @property
    def n_edges(self) -> int:
        """Directed edge count of the graph."""
        return self.graph.n_edges


def _category_sizes(
    n_labeled: int, n_categories: int, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed category sizes summing to ``n_labeled``.

    Real category-size distributions are lognormal-ish; sampled sizes
    are floored at 4 nodes per category.
    """
    if n_categories > n_labeled // 4:
        raise DatasetError(
            f"{n_categories} categories need at least "
            f"{4 * n_categories} labeled nodes, got {n_labeled}"
        )
    raw = rng.lognormal(mean=0.0, sigma=0.8, size=n_categories)
    sizes = np.maximum(
        4, np.round(raw / raw.sum() * n_labeled).astype(np.int64)
    )
    # Fix rounding drift by adjusting the largest categories.
    drift = int(sizes.sum()) - n_labeled
    order = np.argsort(sizes)[::-1]
    i = 0
    while drift != 0:
        c = order[i % n_categories]
        if drift > 0 and sizes[c] > 4:
            sizes[c] -= 1
            drift -= 1
        elif drift < 0:
            sizes[c] += 1
            drift += 1
        i += 1
    return sizes


def _block_graph_with_shared_links(
    sizes: np.ndarray,
    rng: np.random.Generator,
    ref_fraction: float,
    p_cite_own_ref: float,
    p_cite_other_ref: float,
    p_intra_direct: float,
    p_inter_direct: float,
    n_external_refs: int = 0,
    p_cite_external: float = 0.0,
) -> tuple[DirectedGraph, np.ndarray]:
    """Citation-style blocks: members cite their block's reference pool.

    Each block's first ``ref_fraction`` of nodes act as its "seminal
    papers" (reference pool). Ordinary members cite their own pool
    densely and other pools sparsely — creating the shared-out-link
    (bibliographic coupling) and shared-in-link (co-citation) signal —
    plus a thin layer of direct member-to-member citations, the only
    signal ``A + Aᵀ`` can see.

    Each block additionally adopts ``n_external_refs`` *external*
    references drawn from other blocks' pools, cited with probability
    ``p_cite_external``. This is the paper's key scenario (the
    database paper citing an algorithms result): members of a block
    share these cross-category targets — strong signal for
    similarity-based symmetrizations, pure noise for ``A + Aᵀ``.
    """
    k = sizes.size
    n = int(sizes.sum())
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    labels = np.repeat(np.arange(k), sizes)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []

    def block_edges(src: np.ndarray, dst: np.ndarray, p: float) -> None:
        if src.size == 0 or dst.size == 0 or p <= 0:
            return
        m = rng.binomial(src.size * dst.size, min(p, 1.0))
        if m == 0:
            return
        r = src[rng.integers(0, src.size, size=m)]
        c = dst[rng.integers(0, dst.size, size=m)]
        keep = r != c
        rows.append(r[keep])
        cols.append(c[keep])

    refs = []
    members = []
    for b in range(k):
        nodes = np.arange(offsets[b], offsets[b + 1])
        n_ref = max(1, int(round(ref_fraction * nodes.size)))
        refs.append(nodes[:n_ref])
        members.append(nodes[n_ref:] if nodes.size > n_ref else nodes)
    for b in range(k):
        block_edges(members[b], refs[b], p_cite_own_ref)
        block_edges(members[b], members[b], p_intra_direct)
        block_edges(refs[b], refs[b], p_intra_direct)
    # Cross-block citations: block-specific external references plus
    # unstructured sparse noise.
    for b in range(k):
        other_refs = np.concatenate(
            [refs[c] for c in range(k) if c != b]
        ) if k > 1 else np.array([], dtype=np.int64)
        if n_external_refs > 0 and other_refs.size:
            external = rng.choice(
                other_refs,
                size=min(n_external_refs, other_refs.size),
                replace=False,
            )
            block_edges(members[b], external, p_cite_external)
        block_edges(members[b], other_refs, p_cite_other_ref)
        other_members = np.concatenate(
            [members[c] for c in range(k) if c != b]
        ) if k > 1 else np.array([], dtype=np.int64)
        block_edges(members[b], other_members, p_inter_direct)
    row_arr = np.concatenate(rows) if rows else np.array([], dtype=int)
    col_arr = np.concatenate(cols) if cols else np.array([], dtype=int)
    adj = sp.coo_array(
        (np.ones(row_arr.size), (row_arr, col_arr)), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1.0
    return DirectedGraph(adj), labels


def _apply_unlabeled(
    labels: np.ndarray,
    unlabeled_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randomly strip labels from a fraction of the labeled nodes."""
    out = labels.copy()
    labeled = np.flatnonzero(out >= 0)
    n_strip = int(round(unlabeled_fraction * labeled.size))
    if n_strip > 0:
        strip = rng.choice(labeled, size=n_strip, replace=False)
        out[strip] = -1
    return out


def make_cora_like(
    n_nodes: int = 3000,
    n_categories: int = 70,
    seed: int = 0,
    scale: float = 1.0,
    reciprocity_percent: float = 7.7,
    unlabeled_fraction: float = 0.20,
    n_hubs: int = 5,
    hub_citation_rate: float = 0.06,
) -> Dataset:
    """Citation-network stand-in for Cora (17,604 nodes, 70 classes).

    Cluster signal is dominated by shared references / shared citers
    (what bibliometric-style symmetrizations measure): each field
    cites its own seminal-paper pool *and* a field-specific set of
    external references from other fields (the database paper citing
    an algorithms result — §1's motivating example), with only thin
    direct intra-field citation. A few globally-cited "classic" hub
    papers inject a mild hub effect (real Cora has no extreme hubs —
    bibliometric symmetrization works there, unlike on Wikipedia).
    Reciprocity defaults to the paper's noisy 7.7% and 20% of nodes
    are unlabeled, matching §4.1.
    """
    n_nodes = int(round(n_nodes * scale))
    if n_nodes < 8 * n_categories:
        n_categories = max(2, n_nodes // 8)
    rng = np.random.default_rng(seed)
    sizes = _category_sizes(n_nodes, n_categories, rng)
    mean_size = n_nodes / n_categories
    graph, labels = _block_graph_with_shared_links(
        sizes,
        rng,
        ref_fraction=0.3,
        p_cite_own_ref=min(0.6, 8.0 / mean_size),
        p_cite_other_ref=0.15 / n_nodes * n_categories,
        p_intra_direct=min(0.3, 0.5 / mean_size),
        p_inter_direct=0.1 / n_nodes,
        n_external_refs=10,
        p_cite_external=0.3,
    )
    graph, hub_ids = add_global_hubs(
        graph, n_hubs, rng, p_point_to_hub=hub_citation_rate
    )
    labels = np.concatenate([labels, np.full(hub_ids.size, -1)])
    graph = reciprocate_edges(graph, reciprocity_percent, rng)
    labels = _apply_unlabeled(labels, unlabeled_fraction, rng)
    return Dataset(
        name="cora-like",
        graph=graph,
        ground_truth=GroundTruth.from_labels(labels),
        description=(
            "synthetic citation network: shared-reference cluster signal, "
            f"{n_categories} fields, {n_hubs} classic hub papers, "
            f"~{reciprocity_percent}% reciprocity, "
            f"{unlabeled_fraction:.0%} unlabeled"
        ),
    )


def make_wikipedia_like(
    n_nodes: int = 8000,
    n_categories: int = 60,
    seed: int = 0,
    scale: float = 1.0,
    reciprocity_percent: float = 42.1,
    unlabeled_fraction: float = 0.35,
    n_hubs: int = 12,
    n_list_clusters: int = 8,
    overlap_fraction: float = 0.15,
) -> Dataset:
    """Hyperlink-network stand-in for Wikipedia (1.13M nodes).

    Mixes three layers on a shared node set:

    1. category blocks with shared-link structure (topical pages citing
       the same canonical pages),
    2. planted Figure-1 "list pattern" clusters (Guzmania-style
       species lists whose members never interlink),
    3. strong global hub pages ("Area", "Population density", …) that
       a large fraction of all pages point to.

    Ground truth is *overlapping*: ``overlap_fraction`` of labeled
    nodes get a second category. 35% of nodes end up unlabeled and
    reciprocity is pushed to the paper's 42.1%.
    """
    n_nodes = int(round(n_nodes * scale))
    if n_nodes < 10 * n_categories:
        n_categories = max(2, n_nodes // 10)
    rng = np.random.default_rng(seed)

    # Layer 2 sizes first, so layer 1 fills the remaining nodes.
    members_per_list = 14
    shared_out = 5
    shared_in = 5
    list_block = members_per_list + shared_out + shared_in
    n_list_nodes = n_list_clusters * list_block
    if n_list_nodes >= n_nodes // 2:
        raise DatasetError("too many list clusters for this node budget")
    n_block_nodes = n_nodes - n_list_nodes

    sizes = _category_sizes(n_block_nodes, n_categories, rng)
    mean_size = n_block_nodes / n_categories
    blocks, block_labels = _block_graph_with_shared_links(
        sizes,
        rng,
        ref_fraction=0.25,
        p_cite_own_ref=min(0.5, 10.0 / mean_size),
        p_cite_other_ref=0.3 / n_block_nodes * n_categories,
        p_intra_direct=min(0.3, 2.0 / mean_size),
        p_inter_direct=0.3 / n_block_nodes,
        n_external_refs=12,
        p_cite_external=0.25,
    )
    lists, list_labels = shared_neighbor_clusters(
        n_list_clusters,
        members_per_list,
        shared_out,
        shared_in,
        rng,
    )
    # Offset list labels after the block categories.
    list_labels = np.where(
        list_labels >= 0, list_labels + n_categories, -1
    )
    # Assemble both layers on one node set (block nodes first).
    n_core = n_block_nodes + lists.n_nodes
    combined = sp.block_diag(
        (blocks.adjacency, lists.adjacency), format="csr"
    )
    combined = sp.csr_array(combined)
    graph = DirectedGraph(combined)
    labels = np.concatenate([block_labels, list_labels])

    # Cross-layer background noise: light power-law random hyperlinks.
    noise = power_law_digraph(
        n_core, rng, gamma_out=2.4, gamma_in=2.2, d_min=1, d_max=30
    )
    graph = DirectedGraph(
        (graph.adjacency + noise.adjacency).tocsr(), validate=False
    )
    adj = graph.adjacency.copy()
    adj.data[:] = 1.0
    graph = DirectedGraph(adj, validate=False)

    graph, hub_ids = add_global_hubs(
        graph, n_hubs, rng, p_point_to_hub=0.5, p_hub_points_out=0.02
    )
    labels = np.concatenate([labels, np.full(hub_ids.size, -1)])
    graph = reciprocate_edges(graph, reciprocity_percent, rng)
    labels = _apply_unlabeled(labels, unlabeled_fraction, rng)

    # Overlapping second categories for a fraction of labeled nodes.
    total_categories = n_categories + n_list_clusters
    membership_rows = list(np.flatnonzero(labels >= 0))
    membership_cols = [int(labels[v]) for v in membership_rows]
    labeled_nodes = np.flatnonzero(labels >= 0)
    n_overlap = int(round(overlap_fraction * labeled_nodes.size))
    if n_overlap:
        extra_nodes = rng.choice(
            labeled_nodes, size=n_overlap, replace=False
        )
        for v in extra_nodes:
            second = int(rng.integers(total_categories))
            if second != labels[v]:
                membership_rows.append(int(v))
                membership_cols.append(second)
    membership = sp.csr_array(
        (
            np.ones(len(membership_rows)),
            (membership_rows, membership_cols),
        ),
        shape=(graph.n_nodes, total_categories),
    )
    return Dataset(
        name="wikipedia-like",
        graph=graph,
        ground_truth=GroundTruth(membership),
        description=(
            "synthetic hyperlink network: category blocks + "
            f"{n_list_clusters} list-pattern clusters + {n_hubs} hub "
            f"pages, overlapping categories, "
            f"{unlabeled_fraction:.0%} unlabeled, "
            f"~{reciprocity_percent}% reciprocity"
        ),
    )


def _make_social(
    name: str,
    n_nodes: int,
    reciprocity_percent: float,
    seed: int,
    n_communities: int,
) -> Dataset:
    """Shared builder for the scalability-only social datasets."""
    rng = np.random.default_rng(seed)
    # Weak community structure so clustering has work to do.
    sizes = [n_nodes // n_communities] * n_communities
    sizes[0] += n_nodes - sum(sizes)
    mean_size = n_nodes / n_communities
    communities, _ = directed_sbm(
        sizes,
        p_in=min(0.5, 6.0 / mean_size),
        p_out=0.6 / n_nodes,
        rng=rng,
    )
    background = power_law_digraph(
        n_nodes, rng, gamma_out=2.1, gamma_in=2.0, d_min=2, d_max=200
    )
    adj = (communities.adjacency + background.adjacency).tocsr()
    adj.data[:] = 1.0
    graph = reciprocate_edges(
        DirectedGraph(adj, validate=False), reciprocity_percent, rng
    )
    return Dataset(
        name=name,
        graph=graph,
        ground_truth=None,
        description=(
            f"synthetic social network: {n_communities} weak "
            f"communities over a power-law background, "
            f"~{reciprocity_percent}% reciprocity, no ground truth"
        ),
    )


def make_flickr_like(
    n_nodes: int = 12000, seed: int = 0, scale: float = 1.0
) -> Dataset:
    """Social-network stand-in for Flickr (1.86M nodes, 62.4% reciprocity).

    Scalability-only: like the paper, no ground truth is attached."""
    n = int(round(n_nodes * scale))
    return _make_social(
        "flickr-like",
        n,
        reciprocity_percent=62.4,
        seed=seed,
        n_communities=max(4, n // 150),
    )


def make_livejournal_like(
    n_nodes: int = 20000, seed: int = 0, scale: float = 1.0
) -> Dataset:
    """Social-network stand-in for LiveJournal (5.28M nodes, 73.4%
    reciprocity). Scalability-only: no ground truth."""
    n = int(round(n_nodes * scale))
    return _make_social(
        "livejournal-like",
        n,
        reciprocity_percent=73.4,
        seed=seed,
        n_communities=max(4, n // 200),
    )
