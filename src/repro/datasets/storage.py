"""Saving and loading datasets (graph + overlapping ground truth).

The CLI's ``generate`` command writes plain edge lists and flattened
labels, which loses overlapping category memberships. This module
round-trips a full :class:`~repro.datasets.synthetic.Dataset` through
a directory::

    dataset/
      graph.txt          # directed edge list
      ground_truth.json  # overlapping memberships (absent if none)
      meta.json          # name + description

so generated benchmark instances can be shared and reloaded exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.datasets.synthetic import Dataset
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import DatasetError
from repro.graph.io import read_edge_list, write_edge_list

__all__ = ["save_dataset", "load_dataset"]

_GRAPH_FILE = "graph.txt"
_TRUTH_FILE = "ground_truth.json"
_META_FILE = "meta.json"


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write ``dataset`` to ``directory`` (created if needed).

    Returns the directory path. Overwrites existing files of the same
    names; refuses to write into a path that exists as a file.
    """
    path = Path(directory)
    if path.exists() and not path.is_dir():
        raise DatasetError(f"{path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)
    write_edge_list(dataset.graph, path / _GRAPH_FILE)
    meta = {
        "name": dataset.name,
        "description": dataset.description,
        "n_nodes": dataset.n_nodes,
    }
    with (path / _META_FILE).open("w") as f:
        json.dump(meta, f, indent=2)
    truth_path = path / _TRUTH_FILE
    if dataset.ground_truth is not None:
        membership = dataset.ground_truth.membership.tocoo()
        payload = {
            "n_nodes": dataset.ground_truth.n_nodes,
            "n_categories": dataset.ground_truth.n_categories,
            "category_names": dataset.ground_truth.category_names,
            "memberships": [
                [int(i), int(j)]
                for i, j in zip(membership.row, membership.col)
            ],
        }
        with truth_path.open("w") as f:
            json.dump(payload, f)
    elif truth_path.exists():
        truth_path.unlink()
    return path


def load_dataset(directory: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(directory)
    graph_path = path / _GRAPH_FILE
    meta_path = path / _META_FILE
    if not graph_path.exists() or not meta_path.exists():
        raise DatasetError(
            f"{path} does not contain a saved dataset "
            f"(need {_GRAPH_FILE} and {_META_FILE})"
        )
    with meta_path.open() as f:
        meta = json.load(f)
    try:
        name = str(meta["name"])
        description = str(meta["description"])
        n_nodes = int(meta["n_nodes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"{meta_path}: malformed metadata") from exc
    graph = read_edge_list(graph_path, directed=True, n_nodes=n_nodes)
    if graph.n_nodes != n_nodes:
        raise DatasetError(
            f"{graph_path}: {graph.n_nodes} nodes but metadata "
            f"declares {n_nodes}"
        )
    ground_truth = None
    truth_path = path / _TRUTH_FILE
    if truth_path.exists():
        with truth_path.open() as f:
            payload = json.load(f)
        try:
            rows = [int(m[0]) for m in payload["memberships"]]
            cols = [int(m[1]) for m in payload["memberships"]]
            shape = (
                int(payload["n_nodes"]),
                int(payload["n_categories"]),
            )
            names = payload.get("category_names")
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise DatasetError(
                f"{truth_path}: malformed ground truth"
            ) from exc
        membership = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=shape
        )
        ground_truth = GroundTruth(membership, category_names=names)
        if ground_truth.n_nodes != graph.n_nodes:
            raise DatasetError(
                f"{truth_path}: ground truth covers "
                f"{ground_truth.n_nodes} nodes but the graph has "
                f"{graph.n_nodes}"
            )
    return Dataset(
        name=name,
        graph=graph,
        ground_truth=ground_truth,
        description=description,
    )
