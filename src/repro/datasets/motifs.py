"""Case-study motif graphs (Figure 1, §5.7, Figure 10).

The paper's qualitative argument rests on clusters whose members
*never link to one another* but share in-links and out-links — the
idealized Figure-1 graph and the real Wikipedia "Guzmania" cluster
(plant species of one genus: each species page points to the genus
page, the order "Poales", the country "Ecuador", …, and is pointed to
by the genus page and list pages, while species pages do not link to
each other).

:func:`guzmania_motif` builds a named synthetic replica of Figure 10
usable in tests, examples and the §5.7 case-study benchmark. The
idealized Figure-1 graph itself lives in
:func:`repro.graph.generators.figure1_graph`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DatasetError
from repro.graph.digraph import DirectedGraph

__all__ = ["guzmania_motif"]


def guzmania_motif(
    n_species: int = 10,
    n_shared_targets: int = 4,
    n_list_pages: int = 2,
    with_background: bool = True,
    seed: int = 0,
) -> tuple[DirectedGraph, dict[str, list[int]]]:
    """A named replica of the paper's Guzmania subgraph (Figure 10).

    Structure (all names in the returned role dict):

    - ``species``: the cluster members (e.g. *Guzmania lingulata*).
      Each points to the genus page and to every shared target; none
      points to another species.
    - ``genus``: the "Guzmania" page — points to every species and is
      pointed to by every species (mutual links, as in the paper).
    - ``shared_targets``: pages like "Poales", "Ecuador" that all
      species point to.
    - ``list_pages``: pages like "List of Bromeliaceae" that point to
      every species.
    - ``background``: optional unrelated pages the shared targets link
      out to, so the targets are not artificially low-degree.

    Returns the graph (with human-readable node names) and the role
    dict mapping role names to node indices.
    """
    if n_species < 2:
        raise DatasetError("need at least two species")
    if n_shared_targets < 1 or n_list_pages < 0:
        raise DatasetError("need >= 1 shared target and >= 0 list pages")
    rng = np.random.default_rng(seed)
    names: list[str] = []

    def add(name: str) -> int:
        names.append(name)
        return len(names) - 1

    genus = add("Guzmania")
    species = [add(f"Guzmania species {i}") for i in range(n_species)]
    targets = [
        add(t)
        for t in (
            ["Poales", "Ecuador", "Bromeliaceae", "Plant"][
                :n_shared_targets
            ]
            + [
                f"Shared target {i}"
                for i in range(max(0, n_shared_targets - 4))
            ]
        )
    ]
    lists = [add(f"List of Bromeliaceae {i}") for i in range(n_list_pages)]
    background = []
    if with_background:
        background = [add(f"Background page {i}") for i in range(8)]

    edges: list[tuple[int, int]] = []
    for s in species:
        edges.append((genus, s))
        edges.append((s, genus))
        for t in targets:
            edges.append((s, t))
    for lp in lists:
        for s in species:
            edges.append((lp, s))
        edges.append((lp, genus))
    for t in targets:
        for b in background:
            if rng.random() < 0.5:
                edges.append((t, b))
    for b in background:
        for b2 in background:
            if b != b2 and rng.random() < 0.2:
                edges.append((b, b2))

    n = len(names)
    rows = np.array([e[0] for e in edges])
    cols = np.array([e[1] for e in edges])
    adj = sp.coo_array(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1.0
    graph = DirectedGraph(adj, node_names=names)
    roles = {
        "genus": [genus],
        "species": species,
        "shared_targets": targets,
        "list_pages": lists,
        "background": background,
    }
    return graph, roles
