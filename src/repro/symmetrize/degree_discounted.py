"""Degree-discounted symmetrization (§3.4, Eq. 6–8) — the paper's
main contribution.

The bibliometric similarity of two nodes is discounted by their own
degrees and by the degrees of the shared neighbours:

- When ``i`` and ``j`` both point to ``k``, the event is less
  informative the more *other* nodes also point to ``k`` — so the
  contribution is divided by ``D_i(k)^beta`` (Figure 3a).
- Sharing an out-link counts for less when ``i`` or ``j`` has many
  out-links anyway — so the similarity is divided by
  ``D_o(i)^alpha * D_o(j)^alpha`` (Figure 3b).

The degree-discounted bibliographic coupling (Eq. 6) and co-citation
(Eq. 7) matrices are::

    B_d = Do^-alpha  A  Di^-beta  Aᵀ Do^-alpha
    C_d = Di^-beta   Aᵀ Do^-alpha A  Di^-beta

and the final similarity is ``U_d = B_d + C_d`` (Eq. 8). The paper
finds ``alpha = beta = 0.5`` best (§5.5, Table 4) — equivalent to
L2-normalizing raw dot-products, i.e. cosine-style similarity — with
full-degree discounting (exponent 1) an excessive penalty and 0.25 or
log-degree insufficient.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.digraph import DirectedGraph
from repro.linalg.sparse_utils import TIE_RTOL, degree_power
from repro.symmetrize.base import Symmetrization, register_symmetrization

__all__ = ["DegreeDiscountedSymmetrization", "TIE_RTOL"]


@register_symmetrization("degree_discounted")
class DegreeDiscountedSymmetrization(Symmetrization):
    """``U_d = Do^-a A Di^-b Aᵀ Do^-a + Di^-b Aᵀ Do^-a A Di^-b`` (Eq. 8).

    Parameters
    ----------
    alpha:
        Out-degree discount exponent. Also accepts the string
        ``"log"`` for the IDF-style ``1 / log(1 + d)`` discount the
        paper evaluates in Table 4.
    beta:
        In-degree discount exponent (same convention).
    include_coupling, include_cocitation:
        Ablation switches for ``B_d`` and ``C_d`` individually.
    weighted_degrees:
        Use weighted degrees (sums of edge weights) rather than edge
        counts. For the 0/1 graphs of the paper both are identical;
        weighted is the natural generalization and the default.

    Examples
    --------
    >>> from repro.graph import DirectedGraph
    >>> g = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
    >>> u = DegreeDiscountedSymmetrization().apply(g)
    >>> round(u.edge_weight(0, 1), 3)  # 1/sqrt(1*1)/2 = 0.5
    0.5
    """

    def __init__(
        self,
        alpha: float | str = 0.5,
        beta: float | str = 0.5,
        include_coupling: bool = True,
        include_cocitation: bool = True,
        weighted_degrees: bool = True,
    ) -> None:
        for name, value in (("alpha", alpha), ("beta", beta)):
            if isinstance(value, str):
                if value != "log":
                    raise SymmetrizationError(
                        f"{name} must be a number or 'log', got {value!r}"
                    )
            elif value < 0:
                raise SymmetrizationError(f"{name} must be >= 0")
        if not (include_coupling or include_cocitation):
            raise SymmetrizationError(
                "at least one of coupling/co-citation must be included"
            )
        self.alpha = alpha
        self.beta = beta
        self.include_coupling = bool(include_coupling)
        self.include_cocitation = bool(include_cocitation)
        self.weighted_degrees = bool(weighted_degrees)

    @staticmethod
    def _discount(degrees: np.ndarray, exponent: float | str) -> np.ndarray:
        """``d^-exponent`` (or ``1/log(1+d)`` for "log"), with 0 -> 0."""
        if exponent == "log":
            deg = np.asarray(degrees, dtype=np.float64)
            out = np.zeros_like(deg)
            nz = deg > 0
            out[nz] = 1.0 / np.log1p(deg[nz])
            return out
        return degree_power(degrees, float(exponent))

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        adj = graph.adjacency.tocsr()
        d_out = graph.out_degrees(weighted=self.weighted_degrees)
        d_in = graph.in_degrees(weighted=self.weighted_degrees)
        out_disc = sp.diags_array(self._discount(d_out, self.alpha)).tocsr()
        in_disc = sp.diags_array(self._discount(d_in, self.beta)).tocsr()

        # Shared factors: X = Do^-a A Di^-b appears in both terms
        # (B_d = X (Do^-a A)ᵀ... expanded explicitly for clarity).
        a_scaled = (out_disc @ adj @ in_disc).tocsr()  # Do^-a A Di^-b
        parts = []
        if self.include_coupling:
            # B_d = Do^-a A Di^-b Aᵀ Do^-a = a_scaled @ (Do^-a A)ᵀ
            left = (out_disc @ adj).tocsr()
            parts.append((a_scaled @ left.T).tocsr())
        if self.include_cocitation:
            # C_d = Di^-b Aᵀ Do^-a A Di^-b = (A Di^-b)ᵀ @ a_scaled...
            right = (adj @ in_disc).tocsr()
            parts.append((right.T @ (out_disc @ right)).tocsr())
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total.tocsr()

    def pruning_factors(
        self, graph: DirectedGraph
    ) -> list[sp.csr_array]:
        """The square-root factors of the §3.6 fast path.

        Returns ``Y`` with ``B_d = Y Yᵀ`` (when coupling is included)
        and ``Z`` with ``C_d = Z Zᵀ`` (when co-citation is included),
        the matrices :func:`~repro.linalg.allpairs
        .thresholded_gram_matrix` is run on. Exposed so the bench
        harness can time the all-pairs engine on exactly the rows the
        pruned symmetrization searches.
        """
        if isinstance(self.alpha, str) or isinstance(self.beta, str):
            raise SymmetrizationError(
                "apply_pruned requires numeric alpha/beta"
            )
        adj = graph.adjacency.tocsr()
        d_out = graph.out_degrees(weighted=self.weighted_degrees)
        d_in = graph.in_degrees(weighted=self.weighted_degrees)
        out_a = sp.diags_array(
            self._discount(d_out, float(self.alpha))
        ).tocsr()
        out_half = sp.diags_array(
            self._discount(d_out, float(self.alpha) / 2.0)
        ).tocsr()
        in_b = sp.diags_array(
            self._discount(d_in, float(self.beta))
        ).tocsr()
        in_half = sp.diags_array(
            self._discount(d_in, float(self.beta) / 2.0)
        ).tocsr()
        factors = []
        if self.include_coupling:
            factors.append((out_a @ adj @ in_half).tocsr())
        if self.include_cocitation:
            factors.append(
                (in_b @ adj.T.tocsr() @ out_half).tocsr()
            )
        return factors

    def apply_pruned(
        self,
        graph: DirectedGraph,
        threshold: float,
        backend: str = "vectorized",
        block_size: int | None = None,
        n_jobs: int | None = None,
    ):
        """Compute the symmetrized graph *directly at* a prune
        threshold, never materializing the full similarity matrix.

        Uses the §3.6 idea (Bayardo et al.'s threshold-aware all-pairs
        similarity) via the factorizations ``B_d = Y Yᵀ`` with
        ``Y = Do^-α A Di^-β/2`` and ``C_d = Z Zᵀ`` with
        ``Z = Di^-β Aᵀ Do^-α/2``. Each term is searched at
        ``threshold / 2`` (a pair can reach ``threshold`` with both
        halves just below it), summed, and filtered exactly. The
        surviving candidate pairs are verified in one batched gather
        per factor (gathered sparse row selections, elementwise
        multiply, row sums) rather than pair-by-pair.

        Requires numeric ``alpha``/``beta`` (the ``"log"`` discount
        has no symmetric square-root factorization) and a positive
        threshold. ``backend``/``block_size``/``n_jobs`` are forwarded
        to :func:`~repro.linalg.allpairs.thresholded_gram_matrix`;
        with ``n_jobs > 1`` each factor's candidate search runs
        through the out-of-core row-block shard fan-out (factors are
        spilled to memory-mapped CSR stores and workers receive shard
        descriptors, not matrices), so peak RSS stays bounded by the
        block size rather than the factor size.
        Output matches ``apply(graph, threshold=threshold)``
        edge-for-edge: shared entries agree to ~1 ULP, and both the
        candidate search and the final filter use a relative tolerance
        of ``1e-12`` so pairs whose similarity ties the threshold
        exactly land on the *keep* side in both paths instead of
        falling either way with summation order.
        """
        from repro.graph.ugraph import UndirectedGraph
        from repro.linalg.allpairs import (
            DEFAULT_BLOCK_SIZE,
            thresholded_gram_matrix,
        )
        from repro.obs.metrics import (
            metric_inc,
            metric_set,
            peak_rss_bytes,
        )
        from repro.obs.trace import span
        from repro.perf.stopwatch import add_counters

        if threshold <= 0:
            raise SymmetrizationError(
                "apply_pruned requires a positive threshold; "
                "use apply() for threshold 0"
            )
        with span("symmetrize:degree_discounted_pruned") as root:
            root.set(
                threshold=threshold,
                backend=backend,
                n_nodes=graph.n_nodes,
                nnz_in=graph.adjacency.nnz,
            )
            with span("pruning_factors"):
                factors = self.pruning_factors(graph)
            # A pair reaching `threshold` in total has at least one
            # term >= threshold / n_terms, so searching each factor at
            # that per-term level yields a complete candidate set;
            # exact totals are then verified per candidate pair. The
            # relative slack keeps exact-tie pairs (whose per-term dot
            # product can round a hair below the bound) in the
            # candidate set.
            per_term = threshold / len(factors) * (1.0 - TIE_RTOL)
            candidates = None
            for Y in factors:
                found = thresholded_gram_matrix(
                    Y,
                    per_term,
                    backend=backend,
                    block_size=block_size or DEFAULT_BLOCK_SIZE,
                    n_jobs=n_jobs,
                )
                found.data[:] = 1.0
                candidates = (
                    found if candidates is None else candidates + found
                )
            # Each unordered pair is verified once (strict upper
            # triangle; the diagonal never enters, so no post-hoc
            # clearing needed).
            with span("verify_candidates") as sp_:
                pairs = sp.triu(candidates, k=1).tocoo()
                left = pairs.row.astype(np.int64)
                right = pairs.col.astype(np.int64)
                values = np.zeros(left.size)
                batch = 1 << 18
                for Y in factors:
                    for lo in range(0, left.size, batch):
                        sl = slice(lo, lo + batch)
                        values[sl] += np.asarray(
                            Y[left[sl]]
                            .multiply(Y[right[sl]])
                            .sum(axis=1)
                        ).ravel()
                # Relative tolerance so threshold ties survive in this
                # path exactly as they do in apply()'s prune_matrix
                # cut, regardless of floating-point summation order.
                keep = values >= threshold * (1.0 - TIE_RTOL)
                sp_.set(
                    candidate_pairs=int(left.size),
                    kept_pairs=int(keep.sum()),
                )
            add_counters(
                "apply_pruned:degree_discounted",
                candidate_pairs=left.size,
                kept_pairs=int(keep.sum()),
                pruned_pairs=int(left.size - keep.sum()),
            )
            metric_inc(
                "edges_pruned_total", int(left.size - keep.sum())
            )
            total = sp.coo_array(
                (values[keep], (left[keep], right[keep])),
                shape=(graph.n_nodes, graph.n_nodes),
            ).tocsr()
            total = (total + total.T).tocsr()
            root.set(nnz_out=total.nnz)
            metric_set("symmetrize_nnz_out", total.nnz)
            metric_set("peak_rss_bytes", peak_rss_bytes())
        return UndirectedGraph(
            total, node_names=graph.node_names, validate=False
        )

    def __repr__(self) -> str:
        return (
            f"DegreeDiscountedSymmetrization(alpha={self.alpha!r}, "
            f"beta={self.beta!r})"
        )
