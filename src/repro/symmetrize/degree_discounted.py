"""Degree-discounted symmetrization (§3.4, Eq. 6–8) — the paper's
main contribution.

The bibliometric similarity of two nodes is discounted by their own
degrees and by the degrees of the shared neighbours:

- When ``i`` and ``j`` both point to ``k``, the event is less
  informative the more *other* nodes also point to ``k`` — so the
  contribution is divided by ``D_i(k)^beta`` (Figure 3a).
- Sharing an out-link counts for less when ``i`` or ``j`` has many
  out-links anyway — so the similarity is divided by
  ``D_o(i)^alpha * D_o(j)^alpha`` (Figure 3b).

The degree-discounted bibliographic coupling (Eq. 6) and co-citation
(Eq. 7) matrices are::

    B_d = Do^-alpha  A  Di^-beta  Aᵀ Do^-alpha
    C_d = Di^-beta   Aᵀ Do^-alpha A  Di^-beta

and the final similarity is ``U_d = B_d + C_d`` (Eq. 8). The paper
finds ``alpha = beta = 0.5`` best (§5.5, Table 4) — equivalent to
L2-normalizing raw dot-products, i.e. cosine-style similarity — with
full-degree discounting (exponent 1) an excessive penalty and 0.25 or
log-degree insufficient.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.digraph import DirectedGraph
from repro.linalg.sparse_utils import degree_power
from repro.symmetrize.base import Symmetrization, register_symmetrization

__all__ = ["DegreeDiscountedSymmetrization"]


@register_symmetrization("degree_discounted")
class DegreeDiscountedSymmetrization(Symmetrization):
    """``U_d = Do^-a A Di^-b Aᵀ Do^-a + Di^-b Aᵀ Do^-a A Di^-b`` (Eq. 8).

    Parameters
    ----------
    alpha:
        Out-degree discount exponent. Also accepts the string
        ``"log"`` for the IDF-style ``1 / log(1 + d)`` discount the
        paper evaluates in Table 4.
    beta:
        In-degree discount exponent (same convention).
    include_coupling, include_cocitation:
        Ablation switches for ``B_d`` and ``C_d`` individually.
    weighted_degrees:
        Use weighted degrees (sums of edge weights) rather than edge
        counts. For the 0/1 graphs of the paper both are identical;
        weighted is the natural generalization and the default.

    Examples
    --------
    >>> from repro.graph import DirectedGraph
    >>> g = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
    >>> u = DegreeDiscountedSymmetrization().apply(g)
    >>> round(u.edge_weight(0, 1), 3)  # 1/sqrt(1*1)/2 = 0.5
    0.5
    """

    def __init__(
        self,
        alpha: float | str = 0.5,
        beta: float | str = 0.5,
        include_coupling: bool = True,
        include_cocitation: bool = True,
        weighted_degrees: bool = True,
    ) -> None:
        for name, value in (("alpha", alpha), ("beta", beta)):
            if isinstance(value, str):
                if value != "log":
                    raise SymmetrizationError(
                        f"{name} must be a number or 'log', got {value!r}"
                    )
            elif value < 0:
                raise SymmetrizationError(f"{name} must be >= 0")
        if not (include_coupling or include_cocitation):
            raise SymmetrizationError(
                "at least one of coupling/co-citation must be included"
            )
        self.alpha = alpha
        self.beta = beta
        self.include_coupling = bool(include_coupling)
        self.include_cocitation = bool(include_cocitation)
        self.weighted_degrees = bool(weighted_degrees)

    @staticmethod
    def _discount(degrees: np.ndarray, exponent: float | str) -> np.ndarray:
        """``d^-exponent`` (or ``1/log(1+d)`` for "log"), with 0 -> 0."""
        if exponent == "log":
            deg = np.asarray(degrees, dtype=np.float64)
            out = np.zeros_like(deg)
            nz = deg > 0
            out[nz] = 1.0 / np.log1p(deg[nz])
            return out
        return degree_power(degrees, float(exponent))

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        adj = graph.adjacency.tocsr()
        d_out = graph.out_degrees(weighted=self.weighted_degrees)
        d_in = graph.in_degrees(weighted=self.weighted_degrees)
        out_disc = sp.diags_array(self._discount(d_out, self.alpha)).tocsr()
        in_disc = sp.diags_array(self._discount(d_in, self.beta)).tocsr()

        # Shared factors: X = Do^-a A Di^-b appears in both terms
        # (B_d = X (Do^-a A)ᵀ... expanded explicitly for clarity).
        a_scaled = (out_disc @ adj @ in_disc).tocsr()  # Do^-a A Di^-b
        parts = []
        if self.include_coupling:
            # B_d = Do^-a A Di^-b Aᵀ Do^-a = a_scaled @ (Do^-a A)ᵀ
            left = (out_disc @ adj).tocsr()
            parts.append((a_scaled @ left.T).tocsr())
        if self.include_cocitation:
            # C_d = Di^-b Aᵀ Do^-a A Di^-b = (A Di^-b)ᵀ @ a_scaled...
            right = (adj @ in_disc).tocsr()
            parts.append((right.T @ (out_disc @ right)).tocsr())
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total.tocsr()

    def apply_pruned(self, graph: DirectedGraph, threshold: float):
        """Compute the symmetrized graph *directly at* a prune
        threshold, never materializing the full similarity matrix.

        Uses the §3.6 idea (Bayardo et al.'s threshold-aware all-pairs
        similarity) via the factorizations ``B_d = Y Yᵀ`` with
        ``Y = Do^-α A Di^-β/2`` and ``C_d = Z Zᵀ`` with
        ``Z = Di^-β Aᵀ Do^-α/2``. Each term is searched at
        ``threshold / 2`` (a pair can reach ``threshold`` with both
        halves just below it), summed, and filtered exactly.

        Requires numeric ``alpha``/``beta`` (the ``"log"`` discount
        has no symmetric square-root factorization) and a positive
        threshold. Output matches ``apply(graph, threshold=threshold)``
        up to floating-point summation order: shared entries agree to
        ~1 ULP, and pairs whose similarity ties the threshold exactly
        may fall on either side.
        """
        from repro.graph.ugraph import UndirectedGraph
        from repro.linalg.allpairs import thresholded_gram_matrix
        from repro.linalg.sparse_utils import prune_matrix

        if isinstance(self.alpha, str) or isinstance(self.beta, str):
            raise SymmetrizationError(
                "apply_pruned requires numeric alpha/beta"
            )
        if threshold <= 0:
            raise SymmetrizationError(
                "apply_pruned requires a positive threshold; "
                "use apply() for threshold 0"
            )
        adj = graph.adjacency.tocsr()
        d_out = graph.out_degrees(weighted=self.weighted_degrees)
        d_in = graph.in_degrees(weighted=self.weighted_degrees)
        out_a = sp.diags_array(
            self._discount(d_out, float(self.alpha))
        ).tocsr()
        out_half = sp.diags_array(
            self._discount(d_out, float(self.alpha) / 2.0)
        ).tocsr()
        in_b = sp.diags_array(
            self._discount(d_in, float(self.beta))
        ).tocsr()
        in_half = sp.diags_array(
            self._discount(d_in, float(self.beta) / 2.0)
        ).tocsr()
        factors = []
        if self.include_coupling:
            factors.append((out_a @ adj @ in_half).tocsr())
        if self.include_cocitation:
            factors.append(
                (in_b @ adj.T.tocsr() @ out_half).tocsr()
            )
        # A pair reaching `threshold` in total has at least one term
        # >= threshold / n_terms, so searching each factor at that
        # per-term level yields a complete candidate set; exact totals
        # are then verified per candidate pair.
        per_term = threshold / len(factors)
        candidates = None
        for Y in factors:
            found = thresholded_gram_matrix(Y, per_term)
            found.data[:] = 1.0
            candidates = (
                found if candidates is None else candidates + found
            )
        candidates = candidates.tocoo()
        rows_out, cols_out, vals_out = [], [], []
        for i, j in zip(candidates.row, candidates.col):
            if i >= j:
                continue  # verify each unordered pair once
            value = 0.0
            for Y in factors:
                ri = Y[[int(i)], :]
                rj = Y[[int(j)], :]
                value += float((ri @ rj.T).toarray().ravel()[0])
            if value >= threshold:
                rows_out.append(int(i))
                cols_out.append(int(j))
                vals_out.append(value)
        total = sp.coo_array(
            (vals_out, (rows_out, cols_out)),
            shape=(graph.n_nodes, graph.n_nodes),
        ).tocsr()
        total = (total + total.T).tocsr()
        total = prune_matrix(total, threshold)
        lil = total.tolil()
        lil.setdiag(0.0)
        total = lil.tocsr()
        total.eliminate_zeros()
        total = ((total + total.T) * 0.5).tocsr()
        return UndirectedGraph(
            total, node_names=graph.node_names, validate=False
        )

    def __repr__(self) -> str:
        return (
            f"DegreeDiscountedSymmetrization(alpha={self.alpha!r}, "
            f"beta={self.beta!r})"
        )
