"""The ``A + Aᵀ`` symmetrization (§3.1).

The simplest transformation: drop edge directions, summing weights when
both directions exist. This is the *implicit* symmetrization used by
most prior work on clustering directed graphs, which is why the paper
insists on comparing against it explicitly. Its weakness is structural:
it keeps exactly the edge set of the input, so two nodes that share all
their in- and out-neighbours but never link to each other (Figure 1)
remain disconnected and can never be clustered together.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.graph.digraph import DirectedGraph
from repro.symmetrize.base import Symmetrization, register_symmetrization

__all__ = ["NaiveSymmetrization"]


@register_symmetrization("naive")
class NaiveSymmetrization(Symmetrization):
    """``U = A + Aᵀ``.

    Examples
    --------
    >>> from repro.graph import DirectedGraph
    >>> g = DirectedGraph.from_edges([(0, 1), (1, 0), (1, 2)], n_nodes=3)
    >>> u = NaiveSymmetrization().apply(g)
    >>> u.edge_weight(0, 1)  # both directions existed: weights sum
    2.0
    >>> u.edge_weight(1, 2)
    1.0
    """

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        adj = graph.adjacency
        return (adj + adj.T).tocsr()
