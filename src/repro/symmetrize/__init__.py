"""Graph symmetrizations (§3 of the paper) — the core contribution.

A *symmetrization* transforms a directed graph ``G`` with adjacency
``A`` into an undirected graph ``G_U`` with symmetric adjacency ``U``
so that undirected clustering algorithms can be applied. Four methods
from the paper are implemented:

========================  =============================================
:class:`NaiveSymmetrization`            ``U = A + Aᵀ`` (§3.1)
:class:`RandomWalkSymmetrization`       ``U = (ΠP + PᵀΠ)/2`` (§3.2)
:class:`BibliometricSymmetrization`     ``U = AAᵀ + AᵀA`` (§3.3)
:class:`DegreeDiscountedSymmetrization` Eq. 8 with ``α = β = 0.5`` (§3.4)
========================  =============================================

Use :func:`symmetrize` as the high-level entry point::

    from repro import symmetrize
    undirected = symmetrize(graph, "degree_discounted", threshold=0.01)
"""

from repro.symmetrize.base import (
    Symmetrization,
    available_symmetrizations,
    get_symmetrization,
    register_symmetrization,
    symmetrize,
)
from repro.symmetrize.bibliometric import BibliometricSymmetrization
from repro.symmetrize.bipartite import (
    BipartiteDegreeDiscounted,
    bipartite_symmetrize,
)
from repro.symmetrize.degree_discounted import DegreeDiscountedSymmetrization
from repro.symmetrize.naive import NaiveSymmetrization
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
)
from repro.symmetrize.random_walk import RandomWalkSymmetrization
from repro.symmetrize.variants import (
    HybridSymmetrization,
    JaccardSymmetrization,
)

__all__ = [
    "Symmetrization",
    "symmetrize",
    "get_symmetrization",
    "register_symmetrization",
    "available_symmetrizations",
    "NaiveSymmetrization",
    "RandomWalkSymmetrization",
    "BibliometricSymmetrization",
    "DegreeDiscountedSymmetrization",
    "prune_graph",
    "choose_threshold_for_degree",
    "BipartiteDegreeDiscounted",
    "bipartite_symmetrize",
    "JaccardSymmetrization",
    "HybridSymmetrization",
]
