"""Random-walk symmetrization ``U = (ΠP + PᵀΠ)/2`` (§3.2).

``P`` is the row-stochastic transition matrix of the random walk on the
directed graph and ``Π = diag(π)`` holds its stationary distribution
(computed with a uniform teleport, the paper uses probability 0.05).
Gleich showed that the undirected normalized cut of any vertex set on
the symmetrized graph ``G_U`` equals the *directed* normalized cut
(Eq. 3) of the same set on ``G`` — so clustering ``G_U`` with any
off-the-shelf Ncut minimizer reproduces directed-spectral results
without eigenvectors of the directed Laplacian.

The edge *set* of ``U`` is identical to that of ``A + Aᵀ`` (``P`` has
the sparsity pattern of ``A``); only the weights differ. It therefore
inherits the Figure-1 weakness of ``A + Aᵀ``.

Note on teleport: the teleporting walk's transition matrix is dense
(every node can jump anywhere). Following the paper's implementation,
we keep the *sparse* ``P`` of the raw walk and use the teleported
walk's stationary distribution only for the weights ``Π`` — this
preserves sparsity and the edge-set equivalence with ``A + Aᵀ``.
Gleich's exact Ncut equivalence holds when ``π`` is the stationary
distribution of ``P`` itself, which the teleported ``π`` approaches as
the teleport probability goes to 0.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.digraph import DirectedGraph
from repro.linalg.pagerank import pagerank, transition_matrix
from repro.symmetrize.base import Symmetrization, register_symmetrization
from repro.validate.invariants import degenerate_event, is_strict

__all__ = ["RandomWalkSymmetrization"]


@register_symmetrization("random_walk")
class RandomWalkSymmetrization(Symmetrization):
    """``U = (ΠP + PᵀΠ) / 2`` with PageRank stationary distribution.

    Parameters
    ----------
    teleport:
        Uniform teleport probability for the stationary distribution;
        the paper uses 0.05 (§4.2). Must lie in (0, 1].
    tol, max_iter:
        Power-iteration controls forwarded to
        :func:`repro.linalg.pagerank.pagerank`.
    scale:
        Multiplier applied to ``U``. Stationary probabilities are tiny
        (≈1/n), so raw weights underflow integer-weight tools like
        METIS; the default ``"n"`` multiplies by the node count, making
        weights O(1). Pass 1.0 for the unscaled matrix. Scaling is a
        constant factor and does not change normalized cuts.
    """

    def __init__(
        self,
        teleport: float = 0.05,
        tol: float = 1e-10,
        max_iter: int = 1000,
        scale: float | str = "n",
    ) -> None:
        if not 0 < teleport <= 1:
            raise SymmetrizationError("teleport must lie in (0, 1]")
        if isinstance(scale, str) and scale != "n":
            raise SymmetrizationError("scale must be a float or 'n'")
        self.teleport = float(teleport)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.scale = scale

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        if graph.n_nodes and graph.n_edges == 0:
            # P = 0: the walk has nowhere to go, U would be all-zero
            # and downstream clusterers would silently return
            # singletons. Strict contexts get a typed error; lenient
            # ones a warning plus the (honest) zero matrix.
            degenerate_event(
                "random-walk symmetrization of an all-dangling graph "
                f"({graph.n_nodes} nodes, 0 edges): the transition "
                "matrix is identically zero",
                SymmetrizationError,
                code="all_dangling",
            )
            n = graph.n_nodes
            return sp.csr_array((n, n), dtype=float)
        P, _ = transition_matrix(graph)
        pi = pagerank(
            graph,
            teleport=self.teleport,
            tol=self.tol,
            max_iter=self.max_iter,
            raise_on_no_convergence=is_strict(),
        )
        Pi = sp.diags_array(pi).tocsr()
        U = (Pi @ P + P.T @ Pi) * 0.5
        factor = float(graph.n_nodes) if self.scale == "n" else float(
            self.scale
        )
        return (U * factor).tocsr()

    def __repr__(self) -> str:
        return f"RandomWalkSymmetrization(teleport={self.teleport})"
