"""Additional symmetrization variants beyond the paper's four.

Two natural members of the design space the paper's §3 opens up,
useful as baselines and in ablations:

- :class:`JaccardSymmetrization` — neighbourhood Jaccard overlap.
  Like degree-discounting, it normalizes shared-neighbour counts by
  node degrees, but with set semantics (``|X ∩ Y| / |X ∪ Y|``) and no
  shared-neighbour (``D_i(k)``) discount. Comparing it against Eq. 8
  isolates the value of the *middle* discount factor.
- :class:`HybridSymmetrization` — a convex combination
  ``U = λ · norm(A + Aᵀ) + (1 - λ) · norm(U_d)`` of direct
  interlinkage and degree-discounted similarity. The paper's case
  studies (§5.7) show clusters held together purely by similarity;
  real deployments usually want *both* signals.

Both register in the standard symmetrization registry and therefore
work everywhere a built-in method does (pipelines, sweeps, the CLI).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.digraph import DirectedGraph
from repro.symmetrize.base import Symmetrization, register_symmetrization
from repro.symmetrize.degree_discounted import (
    DegreeDiscountedSymmetrization,
)
from repro.symmetrize.naive import NaiveSymmetrization

__all__ = ["JaccardSymmetrization", "HybridSymmetrization"]


def _binary_pattern(matrix: sp.csr_array) -> sp.csr_array:
    out = matrix.copy().tocsr()
    out.data[:] = 1.0
    return out


@register_symmetrization("jaccard")
class JaccardSymmetrization(Symmetrization):
    """Neighbourhood Jaccard similarity.

    ``U[i, j] = |out(i) ∩ out(j)| / |out(i) ∪ out(j)|
              + |in(i) ∩ in(j)| / |in(i) ∪ in(j)|``

    computed on the unweighted edge pattern. Like degree-discounting
    it bounds hub-induced similarity (a hub's huge neighbourhood
    inflates the union), but it does not discount popular *shared*
    neighbours — sharing "Ecuador" counts exactly as much as sharing
    an obscure page.

    Parameters
    ----------
    include_out, include_in:
        Ablation switches for the two terms.
    """

    def __init__(
        self, include_out: bool = True, include_in: bool = True
    ) -> None:
        if not (include_out or include_in):
            raise SymmetrizationError(
                "at least one of out/in similarity must be included"
            )
        self.include_out = bool(include_out)
        self.include_in = bool(include_in)

    @staticmethod
    def _jaccard(pattern: sp.csr_array) -> sp.csr_array:
        """Jaccard overlap of the *rows* of a 0/1 matrix."""
        intersections = (pattern @ pattern.T).tocoo()
        sizes = np.asarray(pattern.sum(axis=1)).ravel()
        unions = (
            sizes[intersections.row]
            + sizes[intersections.col]
            - intersections.data
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(
                unions > 0, intersections.data / unions, 0.0
            )
        return sp.coo_array(
            (values, (intersections.row, intersections.col)),
            shape=(pattern.shape[0], pattern.shape[0]),
        ).tocsr()

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        pattern = _binary_pattern(graph.adjacency)
        parts = []
        if self.include_out:
            parts.append(self._jaccard(pattern))
        if self.include_in:
            parts.append(self._jaccard(pattern.T.tocsr()))
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total.tocsr()

    def __repr__(self) -> str:
        return (
            f"JaccardSymmetrization(include_out={self.include_out}, "
            f"include_in={self.include_in})"
        )


@register_symmetrization("hybrid")
class HybridSymmetrization(Symmetrization):
    """Convex combination of direct links and similarity.

    ``U = lam * (A + Aᵀ) / m₁ + (1 - lam) * U_d / m₂``

    where ``m₁, m₂`` are the maximum entries of each term (so the two
    signals are on comparable scales before mixing) and ``U_d`` is the
    degree-discounted similarity (Eq. 8).

    Parameters
    ----------
    lam:
        Mixing weight on the direct-link term, in [0, 1]. 1 recovers
        (a rescaled) ``A + Aᵀ``; 0 recovers degree-discounted.
    alpha, beta:
        Forwarded to the degree-discounted term.
    """

    def __init__(
        self,
        lam: float = 0.5,
        alpha: float | str = 0.5,
        beta: float | str = 0.5,
    ) -> None:
        if not 0.0 <= lam <= 1.0:
            raise SymmetrizationError("lam must lie in [0, 1]")
        self.lam = float(lam)
        self._naive = NaiveSymmetrization()
        self._discounted = DegreeDiscountedSymmetrization(
            alpha=alpha, beta=beta
        )

    @staticmethod
    def _normalized(matrix: sp.csr_array) -> sp.csr_array:
        peak = matrix.max() if matrix.nnz else 0.0
        if peak <= 0:
            return matrix
        return (matrix / peak).tocsr()

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        direct = self._normalized(self._naive.compute_matrix(graph))
        similar = self._normalized(
            self._discounted.compute_matrix(graph)
        )
        return (
            direct * self.lam + similar * (1.0 - self.lam)
        ).tocsr()

    def __repr__(self) -> str:
        return f"HybridSymmetrization(lam={self.lam})"
