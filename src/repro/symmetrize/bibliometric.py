"""Bibliometric symmetrization ``U = AAᵀ + AᵀA`` (§3.3).

``AAᵀ`` is Kessler's *bibliographic coupling* matrix — entry ``(i, j)``
counts the nodes both ``i`` and ``j`` point to (shared out-links).
``AᵀA`` is Small's *co-citation* matrix — entry ``(i, j)`` counts the
nodes that point to both ``i`` and ``j`` (shared in-links). The paper's
novelty here is taking their *sum*, accounting for both kinds of link
similarity at once.

Setting ``A := A + I`` first (``add_self_loops=True``) ensures that
edges of the input graph survive into the symmetrized graph: a node and
its target then share the target as a common out-link.

The known weakness (§3.4–3.5, the motivation for degree-discounting):
hub nodes of power-law graphs share links with almost everyone purely
by virtue of their degree, so the matrix both (a) places its largest
values on hub pairs (Table 5) and (b) cannot be pruned to a sparse,
well-covered graph — thresholds that keep the matrix sparse strand
roughly half the nodes as singletons (§5.3).
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.graph.digraph import DirectedGraph
from repro.symmetrize.base import Symmetrization, register_symmetrization

__all__ = ["BibliometricSymmetrization"]


@register_symmetrization("bibliometric")
class BibliometricSymmetrization(Symmetrization):
    """``U = AAᵀ + AᵀA`` with optional ``A := A + I`` augmentation.

    Parameters
    ----------
    add_self_loops:
        Apply the §3.3 trick ``A := A + I`` before symmetrizing, which
        guarantees every original edge appears in the output. Default
        true, as in the paper.
    include_coupling, include_cocitation:
        Allow ablation to the pure bibliographic-coupling (``AAᵀ``) or
        pure co-citation (``AᵀA``) matrices. Meila & Pentney compared
        against ``AᵀA`` alone; the paper's contribution is the sum.

    Examples
    --------
    >>> from repro.graph import DirectedGraph
    >>> g = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
    >>> sym = BibliometricSymmetrization(add_self_loops=False)
    >>> sym.apply(g).edge_weight(0, 1)  # share one out-link (node 2)
    1.0
    """

    def __init__(
        self,
        add_self_loops: bool = True,
        include_coupling: bool = True,
        include_cocitation: bool = True,
    ) -> None:
        if not (include_coupling or include_cocitation):
            from repro.exceptions import SymmetrizationError

            raise SymmetrizationError(
                "at least one of coupling/co-citation must be included"
            )
        self.add_self_loops = bool(add_self_loops)
        self.include_coupling = bool(include_coupling)
        self.include_cocitation = bool(include_cocitation)

    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        if self.add_self_loops:
            graph = graph.with_self_loops()
        adj = graph.adjacency
        at = adj.T.tocsr()
        parts = []
        if self.include_coupling:
            parts.append((adj @ at).tocsr())
        if self.include_cocitation:
            parts.append((at @ adj).tocsr())
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total.tocsr()

    def __repr__(self) -> str:
        return (
            f"BibliometricSymmetrization("
            f"add_self_loops={self.add_self_loops}, "
            f"include_coupling={self.include_coupling}, "
            f"include_cocitation={self.include_cocitation})"
        )
