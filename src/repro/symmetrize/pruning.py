"""Pruning symmetrized graphs and choosing prune thresholds (§3.5, §5.3.1).

For big real-world graphs the full similarity matrix has far too many
non-zeros to cluster, so entries below a *prune threshold* are dropped.
The paper observes that choosing a workable threshold is easy for the
degree-discounted matrix (hub entries no longer dominate) and nearly
impossible for the raw bibliometric matrix (sparse-enough thresholds
strand ~50% of the nodes as singletons — §5.3, Table 2).

Threshold selection follows §5.3.1: compute the similarities for a
small random sample of nodes and pick the threshold whose resulting
average degree on the sample approximates the average degree the user
wants (50–150 is typical, matching natural cluster sizes [15]).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SymmetrizationError
from repro.graph.ugraph import UndirectedGraph
from repro.linalg.sparse_utils import prune_matrix

__all__ = ["prune_graph", "choose_threshold_for_degree", "singleton_fraction"]


def prune_graph(
    graph: UndirectedGraph, threshold: float
) -> UndirectedGraph:
    """Drop edges with weight strictly below ``threshold``."""
    pruned = prune_matrix(graph.adjacency, threshold)
    return UndirectedGraph(
        pruned, node_names=graph.node_names, validate=False
    )


def choose_threshold_for_degree(
    graph: UndirectedGraph,
    target_avg_degree: float,
    n_samples: int = 200,
    rng: np.random.Generator | None = None,
) -> float:
    """Pick a prune threshold giving roughly ``target_avg_degree``.

    Implements the §5.3.1 recipe: sample ``n_samples`` rows of the
    similarity matrix, pool their non-zero values, and return the value
    such that keeping entries above it leaves each sampled node with
    ``target_avg_degree`` neighbours on average.

    Returns 0.0 when the graph is already at or below the target
    density (no pruning needed).
    """
    if target_avg_degree <= 0:
        raise SymmetrizationError("target_avg_degree must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    csr = graph.adjacency.tocsr()
    n = csr.shape[0]
    if n == 0 or csr.nnz == 0:
        return 0.0
    n_samples = min(max(1, n_samples), n)
    sample = rng.choice(n, size=n_samples, replace=False)
    values = np.concatenate(
        [csr.data[csr.indptr[i]: csr.indptr[i + 1]] for i in sample]
    )
    if values.size == 0:
        return 0.0
    avg_degree = values.size / n_samples
    if avg_degree <= target_avg_degree:
        return 0.0
    # Keep the top (target * n_samples) values among the sampled entries.
    n_keep = int(round(target_avg_degree * n_samples))
    n_keep = min(max(n_keep, 1), values.size)
    # Threshold at the n_keep-th largest sampled value.
    return float(np.partition(values, -n_keep)[-n_keep])


def singleton_fraction(graph: UndirectedGraph) -> float:
    """Fraction of nodes with no incident edges after pruning.

    The §5.3 failure metric for Bibliometric symmetrization: at an edge
    budget matched to Degree-discounted (~80M edges on Wikipedia), the
    pruned bibliometric graph strands nearly 50% of nodes as singletons
    while the degree-discounted graph strands almost none.
    """
    if graph.n_nodes == 0:
        return 0.0
    return graph.isolated_nodes().size / graph.n_nodes
