"""Symmetrization base class, registry and façade function.

Every symmetrization maps a :class:`~repro.graph.DirectedGraph` to an
:class:`~repro.graph.UndirectedGraph`. Concrete methods subclass
:class:`Symmetrization` and register themselves under a string name so
experiment sweeps can be configured by name.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.linalg.sparse_utils import prune_matrix
from repro.obs.metrics import metric_inc, metric_set
from repro.obs.trace import span
from repro.perf.stopwatch import Stopwatch
from repro.validate.invariants import (
    degenerate_event,
    repair_graph,
    repair_matrix,
    validate_directed_graph,
)

__all__ = [
    "Symmetrization",
    "register_symmetrization",
    "get_symmetrization",
    "available_symmetrizations",
    "symmetrize",
]

_REGISTRY: dict[str, type["Symmetrization"]] = {}


def register_symmetrization(name: str):
    """Class decorator registering a symmetrization under ``name``."""

    def decorator(cls: type["Symmetrization"]) -> type["Symmetrization"]:
        if not issubclass(cls, Symmetrization):
            raise TypeError(f"{cls!r} is not a Symmetrization subclass")
        key = name.lower()
        if key in _REGISTRY and _REGISTRY[key] is not cls:
            raise SymmetrizationError(
                f"symmetrization name {name!r} already registered"
            )
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return decorator


def get_symmetrization(name: str, **params: object) -> "Symmetrization":
    """Instantiate a registered symmetrization by name.

    Common aliases are accepted: ``"a+at"``/``"naive"``,
    ``"random_walk"``/``"rw"``, ``"bibliometric"``/``"bib"``,
    ``"degree_discounted"``/``"dd"``.
    """
    aliases = {
        "a+at": "naive",
        "a_plus_at": "naive",
        "rw": "random_walk",
        "bib": "bibliometric",
        "dd": "degree_discounted",
    }
    key = aliases.get(name.lower(), name.lower())
    try:
        cls = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SymmetrizationError(
            f"unknown symmetrization {name!r}; known: {known}"
        ) from None
    return cls(**params)  # type: ignore[call-arg]


def available_symmetrizations() -> list[str]:
    """Names of all registered symmetrizations, sorted."""
    return sorted(_REGISTRY)


class Symmetrization(abc.ABC):
    """Base class: a directed-to-undirected graph transformation.

    Subclasses implement :meth:`compute_matrix`, returning the raw
    symmetric similarity matrix ``U``. The public :meth:`apply` wraps it
    with validation, optional pruning (§3.5) and optional self-loop
    removal, and packages the result as an
    :class:`~repro.graph.UndirectedGraph`.
    """

    #: Registry name, set by :func:`register_symmetrization`.
    name: str = "abstract"

    @abc.abstractmethod
    def compute_matrix(self, graph: DirectedGraph) -> sp.csr_array:
        """The raw symmetric similarity matrix for ``graph``."""

    def config(self) -> dict[str, object]:
        """Identifying parameters (method name + constructor args).

        Used by the execution engine to fingerprint symmetrize stages
        for the content-addressed artifact cache, so it must cover
        every attribute that affects :meth:`compute_matrix`. The
        default returns all public instance attributes, which holds
        for every built-in symmetrization; subclasses with
        non-identifying state should override.
        """
        params = {
            key: value
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        }
        return {"method": self.name, **params}

    def apply(
        self,
        graph: DirectedGraph,
        threshold: float = 0.0,
        drop_self_loops: bool = True,
    ) -> UndirectedGraph:
        """Symmetrize ``graph``.

        Parameters
        ----------
        graph:
            The directed input graph.
        threshold:
            Prune-threshold (§3.5): entries of ``U`` strictly below it
            are dropped. 0 keeps everything.
        drop_self_loops:
            Self-similarities (the diagonal of ``U``) carry no
            clustering information and are dropped by default.
        """
        if not isinstance(graph, DirectedGraph):
            raise SymmetrizationError(
                f"expected a DirectedGraph, got {type(graph).__name__}"
            )
        graph = self._validated_input(graph)
        with span(f"symmetrize:{self.name}") as sp_, Stopwatch(
            f"symmetrize:{self.name}"
        ) as sw:
            with span("compute_matrix"):
                matrix = self._validated_output(
                    self.compute_matrix(graph).tocsr(), graph
                )
            nnz_raw = matrix.nnz
            if threshold > 0:
                with span("prune"):
                    matrix = prune_matrix(matrix, threshold)
                metric_inc(
                    "edges_pruned_total", nnz_raw - matrix.nnz
                )
            if drop_self_loops:
                lil = matrix.tolil()
                lil.setdiag(0.0)
                matrix = lil.tocsr()
                matrix.eliminate_zeros()
            # Clean tiny asymmetries from floating-point products.
            matrix = ((matrix + matrix.T) * 0.5).tocsr()
            sw.count(
                n_nodes=graph.n_nodes,
                nnz_in=graph.adjacency.nnz,
                nnz_raw=nnz_raw,
                nnz_out=matrix.nnz,
            )
            sp_.set(
                n_nodes=graph.n_nodes,
                nnz_in=graph.adjacency.nnz,
                nnz_raw=nnz_raw,
                nnz_out=matrix.nnz,
                threshold=threshold,
            )
            metric_set("symmetrize_nnz_raw", nnz_raw)
            metric_set("symmetrize_nnz_out", matrix.nnz)
        return UndirectedGraph(
            matrix, node_names=graph.node_names, validate=False
        )

    def _validated_input(self, graph: DirectedGraph) -> DirectedGraph:
        """Reject (strict) or repair (lenient) malformed input weights.

        Graphs built through the validated constructors never trip
        this; it protects against ``validate=False`` construction and
        matrices mutated after the fact.
        """
        report = validate_directed_graph(graph.adjacency, level="basic")
        if report.ok:
            return graph
        degenerate_event(
            f"symmetrization {self.name!r} got an invalid input graph: "
            + report.summary(),
            SymmetrizationError,
            code="invalid_input",
        )
        graph, repair_report = repair_graph(graph)
        repair_report.emit_warnings(stacklevel=4)
        return graph

    def _validated_output(
        self, matrix: sp.csr_array, graph: DirectedGraph
    ) -> sp.csr_array:
        """Enforce the output invariants of every symmetrization.

        The similarity matrix must be finite and non-negative; an
        all-zero matrix for an input that has edges means the method
        silently collapsed (the random-walk P = 0 pathology).
        """
        bad_weights = matrix.nnz and not bool(
            np.all(np.isfinite(matrix.data))
        )
        if not bad_weights and matrix.nnz:
            bad_weights = bool((matrix.data < 0).any())
        if bad_weights:
            degenerate_event(
                f"symmetrization {self.name!r} produced non-finite or "
                "negative similarities",
                SymmetrizationError,
                code="invalid_output",
            )
            matrix, repair_report = repair_matrix(matrix)
            repair_report.emit_warnings(stacklevel=4)
        if graph.n_edges and matrix.nnz == 0:
            degenerate_event(
                f"symmetrization {self.name!r} produced an all-zero "
                f"matrix for a graph with {graph.n_edges} edges; "
                "clustering it would silently return singletons",
                SymmetrizationError,
                code="all_zero_output",
            )
        return matrix

    def __call__(
        self, graph: DirectedGraph, threshold: float = 0.0
    ) -> UndirectedGraph:
        """Shorthand for :meth:`apply`."""
        return self.apply(graph, threshold=threshold)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def symmetrize(
    graph: DirectedGraph,
    method: str | Symmetrization = "degree_discounted",
    threshold: float = 0.0,
    **params: object,
) -> UndirectedGraph:
    """Symmetrize a directed graph (the library's main façade).

    Parameters
    ----------
    graph:
        The directed input graph.
    method:
        Either a :class:`Symmetrization` instance or a registered name
        (``"naive"``/``"a+at"``, ``"random_walk"``, ``"bibliometric"``,
        ``"degree_discounted"``).
    threshold:
        Prune threshold applied to the similarity matrix (§3.5).
    **params:
        Extra constructor arguments when ``method`` is a name (e.g.
        ``alpha=0.5, beta=0.5`` for degree-discounted).

    Examples
    --------
    >>> from repro.graph.generators import figure1_graph
    >>> g, roles = figure1_graph()
    >>> u = symmetrize(g, "bibliometric")
    >>> u.has_edge(roles["pair"][0], roles["pair"][1])
    True
    """
    if isinstance(method, Symmetrization):
        if params:
            raise SymmetrizationError(
                "cannot pass parameters together with an instance"
            )
        sym = method
    else:
        sym = get_symmetrization(method, **params)
    return sym.apply(graph, threshold=threshold)
