"""Degree-discounted similarity for bipartite graphs (§6 future work).

The paper's conclusion names "extending our approaches to bi-partite
and multi-partite graphs" as a promising avenue. The extension is
natural: in a bipartite graph with biadjacency ``B`` (rows = left
nodes, columns = right nodes, ``B[i, j] > 0`` meaning the left node
``i`` links to right node ``j``), two left nodes are similar when they
link to the same right nodes, and vice versa — exactly bibliographic
coupling / co-citation restricted to one side, with the same
hub-discounting correction:

``S_left  = Dl^-alpha B  Dr^-beta  Bᵀ Dl^-alpha``
``S_right = Dr^-beta  Bᵀ Dl^-alpha B  Dr^-beta``

where ``Dl`` holds left-node out-degrees and ``Dr`` right-node
in-degrees. Each side can then be clustered independently with any
stage-2 algorithm (one-mode projection co-clustering).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.graph.ugraph import UndirectedGraph
from repro.linalg.sparse_utils import degree_power, prune_matrix

__all__ = ["BipartiteDegreeDiscounted", "bipartite_symmetrize"]


def _as_biadjacency(matrix: object) -> sp.csr_array:
    if sp.issparse(matrix):
        csr = sp.csr_array(matrix)
    else:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise SymmetrizationError(
                f"biadjacency must be 2-D, got shape {arr.shape}"
            )
        csr = sp.csr_array(arr)
    csr = csr.astype(np.float64)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    if csr.nnz and csr.data.min() < 0:
        raise SymmetrizationError("biadjacency weights must be >= 0")
    return csr


class BipartiteDegreeDiscounted:
    """Degree-discounted one-mode projections of a bipartite graph.

    Parameters
    ----------
    alpha:
        Discount exponent on the degrees of the side being projected
        (the analogue of the out-degree discount of Eq. 6).
    beta:
        Discount exponent on the degrees of the *other* side — the
        shared-neighbour side (the analogue of the in-degree discount).

    Examples
    --------
    >>> import numpy as np
    >>> B = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    >>> sym = BipartiteDegreeDiscounted()
    >>> left = sym.left_similarity(B)
    >>> left.has_edge(0, 1), left.has_edge(0, 2)
    (True, False)
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.5) -> None:
        if alpha < 0 or beta < 0:
            raise SymmetrizationError("alpha and beta must be >= 0")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def _project(
        self, B: sp.csr_array, threshold: float, drop_self_loops: bool
    ) -> UndirectedGraph:
        """Similarity among the rows of ``B``."""
        left_degrees = np.asarray(B.sum(axis=1)).ravel()
        right_degrees = np.asarray(B.sum(axis=0)).ravel()
        Dl = sp.diags_array(degree_power(left_degrees, self.alpha))
        Dr = sp.diags_array(degree_power(right_degrees, self.beta))
        scaled = (Dl @ B @ Dr).tocsr()
        left_scaled = (Dl @ B).tocsr()
        similarity = (scaled @ left_scaled.T).tocsr()
        if threshold > 0:
            similarity = prune_matrix(similarity, threshold)
        if drop_self_loops:
            lil = similarity.tolil()
            lil.setdiag(0.0)
            similarity = lil.tocsr()
            similarity.eliminate_zeros()
        similarity = ((similarity + similarity.T) * 0.5).tocsr()
        return UndirectedGraph(similarity, validate=False)

    def left_similarity(
        self,
        biadjacency: object,
        threshold: float = 0.0,
        drop_self_loops: bool = True,
    ) -> UndirectedGraph:
        """Similarity graph among the left (row) nodes."""
        B = _as_biadjacency(biadjacency)
        return self._project(B, threshold, drop_self_loops)

    def right_similarity(
        self,
        biadjacency: object,
        threshold: float = 0.0,
        drop_self_loops: bool = True,
    ) -> UndirectedGraph:
        """Similarity graph among the right (column) nodes."""
        B = _as_biadjacency(biadjacency)
        return self._project(B.T.tocsr(), threshold, drop_self_loops)

    def __repr__(self) -> str:
        return (
            f"BipartiteDegreeDiscounted(alpha={self.alpha}, "
            f"beta={self.beta})"
        )


def bipartite_symmetrize(
    biadjacency: object,
    side: str = "left",
    alpha: float = 0.5,
    beta: float = 0.5,
    threshold: float = 0.0,
) -> UndirectedGraph:
    """Functional façade over :class:`BipartiteDegreeDiscounted`.

    Parameters
    ----------
    biadjacency:
        Rectangular (sparse or dense) matrix; rows are left nodes.
    side:
        ``"left"`` or ``"right"`` — which one-mode projection to build.
    alpha, beta, threshold:
        See :class:`BipartiteDegreeDiscounted`.
    """
    if side not in ("left", "right"):
        raise SymmetrizationError("side must be 'left' or 'right'")
    sym = BipartiteDegreeDiscounted(alpha=alpha, beta=beta)
    if side == "left":
        return sym.left_similarity(biadjacency, threshold=threshold)
    return sym.right_similarity(biadjacency, threshold=threshold)
