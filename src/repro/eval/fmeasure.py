"""The best-match micro-averaged F-measure of §4.3.

For each output cluster ``C_i`` and ground-truth category ``G_j``::

    Prec(C_i, G_j) = |C_i ∩ G_j| / |C_i|
    Rec(C_i, G_j)  = |C_i ∩ G_j| / |G_j|
    F(C_i, G_j)    = harmonic mean of the two

Each cluster is matched to the category maximizing ``F(C_i, G_j)``;
``F(C_i)`` is that maximum, and the clustering's score is the
cluster-size-weighted (micro) average of the ``F(C_i)``. These are the
numbers on the y-axes of Figures 5, 6(a) and 7 and in Tables 3–4.

Unlabeled nodes: by default they are excluded from the evaluation
entirely (clusters are intersected with the labeled node set before
computing sizes), since nodes with no ground truth can be neither
correct nor incorrect. Pass ``restrict_to_labeled=False`` to count
them against precision instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cluster.common import Clustering
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import EvaluationError

__all__ = [
    "average_f_score",
    "f_score_report",
    "FScoreReport",
    "correctly_clustered_mask",
]


@dataclass(frozen=True)
class FScoreReport:
    """Full output of the §4.3 evaluation.

    Attributes
    ----------
    average_f:
        The micro-averaged F-measure, in percent (paper convention:
        peak Cora value is "36.62").
    per_cluster_f:
        ``F(C_i)`` per cluster id (percent).
    best_category:
        Index of the best-matching category per cluster (-1 when the
        cluster has no labeled overlap with any category).
    cluster_sizes:
        Evaluated cluster sizes (restricted to labeled nodes when
        ``restrict_to_labeled``).
    n_evaluated_nodes:
        Total node count entering the weighted average.
    """

    average_f: float
    per_cluster_f: np.ndarray
    best_category: np.ndarray
    cluster_sizes: np.ndarray
    n_evaluated_nodes: int


def _validate(clustering: Clustering, ground_truth: GroundTruth) -> None:
    if clustering.n_nodes != ground_truth.n_nodes:
        raise EvaluationError(
            f"clustering covers {clustering.n_nodes} nodes but ground "
            f"truth covers {ground_truth.n_nodes}"
        )


def f_score_report(
    clustering: Clustering,
    ground_truth: GroundTruth,
    restrict_to_labeled: bool = True,
) -> FScoreReport:
    """Compute the §4.3 evaluation (see module docstring)."""
    _validate(clustering, ground_truth)
    n = clustering.n_nodes
    membership = ground_truth.membership.tocsr()
    labeled = ground_truth.labeled_mask()
    indicator = clustering.indicator_matrix()  # n x k
    if restrict_to_labeled:
        scale = sp.diags_array(labeled.astype(np.float64))
        indicator = (scale @ indicator).tocsr()
    cluster_sizes = np.asarray(indicator.sum(axis=0)).ravel()
    category_sizes = ground_truth.category_sizes()
    k = clustering.n_clusters

    # Intersection counts: k x n_categories, sparse.
    overlap = (indicator.T @ membership).tocoo()
    per_cluster_f = np.zeros(k)
    best_category = np.full(k, -1, dtype=np.int64)
    if overlap.nnz:
        prec = overlap.data / np.maximum(cluster_sizes[overlap.row], 1e-300)
        rec = overlap.data / np.maximum(
            category_sizes[overlap.col], 1e-300
        )
        f = 2.0 * prec * rec / np.maximum(prec + rec, 1e-300)
        # Row-wise max via argsort trick.
        order = np.lexsort((f, overlap.row))
        rows_sorted = overlap.row[order]
        # The last entry of each row-run has that row's max f.
        is_last = np.empty(order.size, dtype=bool)
        is_last[:-1] = rows_sorted[:-1] != rows_sorted[1:]
        is_last[-1] = True
        winners = order[is_last]
        per_cluster_f[overlap.row[winners]] = f[winners]
        best_category[overlap.row[winners]] = overlap.col[winners]

    evaluated = cluster_sizes.sum()
    if evaluated == 0:
        average = 0.0
    else:
        average = float(
            (cluster_sizes * per_cluster_f).sum() / evaluated
        )
    return FScoreReport(
        average_f=100.0 * average,
        per_cluster_f=100.0 * per_cluster_f,
        best_category=best_category,
        cluster_sizes=cluster_sizes,
        n_evaluated_nodes=int(evaluated),
    )


def average_f_score(
    clustering: Clustering,
    ground_truth: GroundTruth,
    restrict_to_labeled: bool = True,
) -> float:
    """The micro-averaged F-measure, in percent (higher is better)."""
    return f_score_report(
        clustering, ground_truth, restrict_to_labeled
    ).average_f


def correctly_clustered_mask(
    clustering: Clustering,
    ground_truth: GroundTruth,
) -> np.ndarray:
    """Which nodes are "correctly clustered" (§5.6's sign-test unit).

    A node counts as correctly clustered when it belongs to the
    ground-truth category its cluster was matched to (the category
    maximizing ``F(C_i, G_j)``). Unlabeled nodes are never correct.
    """
    _validate(clustering, ground_truth)
    report = f_score_report(clustering, ground_truth)
    labels = clustering.labels
    matched_cat = report.best_category[labels]  # per node
    membership = ground_truth.membership.tocsr()
    correct = np.zeros(clustering.n_nodes, dtype=bool)
    has_match = matched_cat >= 0
    idx = np.flatnonzero(has_match)
    if idx.size:
        vals = membership[idx, matched_cat[has_match]]
        correct[idx] = np.asarray(vals).ravel() > 0
    return correct
