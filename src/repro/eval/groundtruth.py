"""Ground-truth category assignments for external cluster evaluation.

Ground truth in the paper's datasets is *overlapping* (a Wikipedia
page may belong to several categories) and *partial* (35% of Wikipedia
nodes and 20% of Cora nodes carry no label at all). :class:`GroundTruth`
models both, backed by a sparse node-by-category membership matrix.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import EvaluationError

__all__ = ["GroundTruth"]


class GroundTruth:
    """Overlapping, possibly-partial ground-truth categories.

    Parameters
    ----------
    membership:
        Sparse or dense ``(n_nodes, n_categories)`` 0/1 matrix;
        ``membership[v, c] = 1`` iff node ``v`` belongs to category
        ``c``.
    category_names:
        Optional names for reporting.
    """

    __slots__ = ("_membership", "_names")

    def __init__(
        self,
        membership: object,
        category_names: Sequence[object] | None = None,
    ) -> None:
        if sp.issparse(membership):
            m = sp.csr_array(membership)
        else:
            m = sp.csr_array(np.asarray(membership))
        m = m.astype(np.float64)
        m.eliminate_zeros()
        if m.nnz and (m.data.min() < 0 or m.data.max() > 1):
            raise EvaluationError("membership entries must be 0 or 1")
        m.data[:] = 1.0
        self._membership = m
        if category_names is not None:
            names = list(category_names)
            if len(names) != m.shape[1]:
                raise EvaluationError(
                    f"{len(names)} names for {m.shape[1]} categories"
                )
            self._names: list[object] | None = names
        else:
            self._names = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_labels(
        cls,
        labels: np.ndarray | Sequence[int],
        unlabeled: int = -1,
    ) -> "GroundTruth":
        """From a flat label array; ``unlabeled`` marks nodes with no
        ground truth (the generators use -1)."""
        arr = np.asarray(labels, dtype=np.int64)
        if arr.ndim != 1:
            raise EvaluationError("labels must be one-dimensional")
        labeled = arr != unlabeled
        values = np.unique(arr[labeled])
        remap = {v: i for i, v in enumerate(values)}
        rows = np.flatnonzero(labeled)
        cols = np.array([remap[v] for v in arr[labeled]], dtype=np.int64)
        m = sp.csr_array(
            (np.ones(rows.size), (rows, cols)),
            shape=(arr.size, values.size),
        )
        return cls(m, category_names=[int(v) for v in values])

    @classmethod
    def from_categories(
        cls,
        categories: Mapping[object, Iterable[int]],
        n_nodes: int,
    ) -> "GroundTruth":
        """From a mapping ``{category_name: member node indices}``."""
        names = list(categories)
        rows: list[int] = []
        cols: list[int] = []
        for c, name in enumerate(names):
            for v in categories[name]:
                v = int(v)
                if not 0 <= v < n_nodes:
                    raise EvaluationError(
                        f"category {name!r}: node {v} out of range"
                    )
                rows.append(v)
                cols.append(c)
        m = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)),
            shape=(n_nodes, len(names)),
        )
        return cls(m, category_names=names)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def membership(self) -> sp.csr_array:
        """The ``(n_nodes, n_categories)`` sparse membership matrix."""
        return self._membership

    @property
    def n_nodes(self) -> int:
        """Number of nodes (labeled or not)."""
        return self._membership.shape[0]

    @property
    def n_categories(self) -> int:
        """Number of categories."""
        return self._membership.shape[1]

    @property
    def category_names(self) -> list[object] | None:
        """Category names, if provided."""
        return None if self._names is None else list(self._names)

    def category_sizes(self) -> np.ndarray:
        """Number of members of each category."""
        return np.asarray(self._membership.sum(axis=0)).ravel()

    def category_members(self, category: int) -> np.ndarray:
        """Node indices in ``category``."""
        if not 0 <= category < self.n_categories:
            raise EvaluationError(f"no such category: {category}")
        col = self._membership[:, [category]].tocoo()
        return np.sort(col.row if col.row.size else col.coords[0])

    def labeled_mask(self) -> np.ndarray:
        """Boolean mask of nodes belonging to at least one category."""
        counts = np.asarray(self._membership.sum(axis=1)).ravel()
        return counts > 0

    def labeled_fraction(self) -> float:
        """Fraction of nodes with at least one category."""
        if self.n_nodes == 0:
            return 0.0
        return float(self.labeled_mask().mean())

    # ------------------------------------------------------------------
    # Filtering (the paper's category clean-up, §4.1)
    # ------------------------------------------------------------------
    def filter_small_categories(self, min_size: int) -> "GroundTruth":
        """Drop categories with fewer than ``min_size`` members.

        The paper removed Wikipedia categories with at most 20 member
        pages to discard insignificant/housekeeping categories.
        """
        if min_size < 1:
            raise EvaluationError("min_size must be >= 1")
        sizes = self.category_sizes()
        keep = np.flatnonzero(sizes >= min_size)
        m = self._membership[:, keep]
        names = (
            None
            if self._names is None
            else [self._names[c] for c in keep]
        )
        return GroundTruth(m, category_names=names)

    def __repr__(self) -> str:
        return (
            f"GroundTruth(n_nodes={self.n_nodes}, "
            f"n_categories={self.n_categories}, "
            f"labeled={self.labeled_fraction():.0%})"
        )
