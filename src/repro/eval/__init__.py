"""Cluster-quality evaluation (§4.3, §5.6).

- :class:`GroundTruth` — possibly-overlapping ground-truth categories
  with unlabeled nodes, as in the paper's Wikipedia (17,950
  overlapping categories, 35% unlabeled) and Cora (70 leaf classes,
  20% unlabeled) datasets.
- :func:`average_f_score` — the micro-averaged best-match F-measure of
  §4.3 (the y-axis of Figures 5–7).
- :func:`sign_test` — the paired binomial sign test of §5.6.
"""

from repro.directed.objectives import clustering_ncut
from repro.eval.agreement import (
    adjusted_rand_index,
    flatten_ground_truth,
    normalized_mutual_information,
    purity,
)
from repro.eval.fmeasure import (
    FScoreReport,
    average_f_score,
    correctly_clustered_mask,
    f_score_report,
)
from repro.eval.groundtruth import GroundTruth
from repro.eval.significance import SignTestResult, sign_test

__all__ = [
    "GroundTruth",
    "average_f_score",
    "f_score_report",
    "FScoreReport",
    "correctly_clustered_mask",
    "sign_test",
    "SignTestResult",
    "clustering_ncut",
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "flatten_ground_truth",
]
