"""Paired binomial sign test (§5.6).

The paper validates its improvements with a sign test: count the nodes
correctly clustered by method A but not B (``n_a``) and vice versa
(``n_b``); under the null hypothesis of no difference, each such
"discordant" node is a fair coin flip, so the probability of counts at
least as extreme as observed follows a Binomial(``n_a + n_b``, 0.5)
tail. The paper reports p-values as extreme as 1.0E-22767, far below
float underflow, so the result carries ``log10_p`` computed in log
space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import EvaluationError

__all__ = ["SignTestResult", "sign_test"]


def _log_binomial_tail(wins: int, n: int) -> float:
    """``log P[X >= wins]`` for ``X ~ Binomial(n, 1/2)`` in log space.

    Sums ``C(n, k) / 2^n`` for ``k = wins..n`` term by term using
    ``gammaln``, stopping once terms are negligible (they decay
    geometrically for ``wins > n/2``). Handles the extreme counts of
    §5.6 where ordinary floating point underflows.
    """
    from scipy.special import gammaln

    log_half_n = -n * np.log(2.0)
    log_terms: list[float] = []
    log_term = (
        gammaln(n + 1) - gammaln(wins + 1) - gammaln(n - wins + 1)
        + log_half_n
    )
    k = wins
    while k <= n:
        log_terms.append(log_term)
        if k == n:
            break
        ratio = (n - k) / (k + 1.0)
        if ratio <= 0:
            break
        log_term += np.log(ratio)
        # Terms shrink geometrically once past the mode; stop when the
        # remaining geometric tail cannot change the sum.
        if log_term < log_terms[0] - 40.0:
            break
        k += 1
    peak = max(log_terms)
    return float(
        peak + np.log(sum(np.exp(t - peak) for t in log_terms))
    )


@dataclass(frozen=True)
class SignTestResult:
    """Outcome of a paired sign test between methods A and B.

    Attributes
    ----------
    n_a_only:
        Nodes correct under A but not B.
    n_b_only:
        Nodes correct under B but not A.
    p_value:
        One-sided tail probability that the *winning* side's count (or
        larger) arises under the null; 0.0 when it underflows (see
        ``log10_p``).
    log10_p:
        ``log10`` of the p-value, computed in log space (finite even
        when ``p_value`` underflows to zero).
    winner:
        ``"a"``, ``"b"`` or ``"tie"``.
    """

    n_a_only: int
    n_b_only: int
    p_value: float
    log10_p: float
    winner: str


def sign_test(
    correct_a: np.ndarray,
    correct_b: np.ndarray,
) -> SignTestResult:
    """Paired binomial sign test on per-node correctness masks.

    Parameters
    ----------
    correct_a, correct_b:
        Boolean arrays (same length) marking which nodes each method
        clustered correctly — see
        :func:`repro.eval.fmeasure.correctly_clustered_mask`.

    Notes
    -----
    Concordant nodes (both correct or both incorrect) are ignored, as
    in any sign test. With zero discordant nodes the test is undefined
    and the p-value is reported as 1.0 (no evidence of difference).
    """
    a = np.asarray(correct_a, dtype=bool)
    b = np.asarray(correct_b, dtype=bool)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            "correctness masks must be 1-D arrays of equal length"
        )
    n_a_only = int(np.count_nonzero(a & ~b))
    n_b_only = int(np.count_nonzero(~a & b))
    n = n_a_only + n_b_only
    if n == 0:
        return SignTestResult(0, 0, 1.0, 0.0, "tie")
    wins = max(n_a_only, n_b_only)
    # One-sided: P[X >= wins], X ~ Binomial(n, 1/2), in log space.
    log_p = stats.binom.logsf(wins - 1, n, 0.5)
    if not np.isfinite(log_p):
        # scipy's logsf underflows for paper-scale counts (the paper
        # reports p = 1.0E-22767); sum the tail directly in log space.
        log_p = _log_binomial_tail(wins, n)
    log10_p = float(log_p / np.log(10.0))
    p_value = float(np.exp(log_p))
    if n_a_only > n_b_only:
        winner = "a"
    elif n_b_only > n_a_only:
        winner = "b"
    else:
        winner = "tie"
        p_value = 1.0
        log10_p = 0.0
    return SignTestResult(n_a_only, n_b_only, p_value, log10_p, winner)
