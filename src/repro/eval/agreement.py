"""Partition-agreement metrics: purity, NMI, adjusted Rand index.

The paper evaluates with its best-match F-measure (§4.3); these
standard external metrics are provided as cross-checks (a method that
wins on Avg-F but loses on NMI/ARI would be suspicious) and for users
whose ground truth is a flat partition.

All three operate on *flat* labelings. For the library's overlapping
:class:`~repro.eval.groundtruth.GroundTruth`, use
:func:`flatten_ground_truth` first (each node keeps its first
category; unlabeled nodes are excluded from the comparison).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.common import Clustering
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import EvaluationError

__all__ = [
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "flatten_ground_truth",
]


def _contingency(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> np.ndarray:
    """Dense contingency table of two label vectors."""
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            "label vectors must be 1-D and equally long"
        )
    if a.size == 0:
        raise EvaluationError("cannot compare empty labelings")
    if a.min() < 0 or b.min() < 0:
        raise EvaluationError(
            "labels must be non-negative (mask out unlabeled nodes "
            "before comparing)"
        )
    table = np.zeros((a.max() + 1, b.max() + 1), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of nodes whose cluster's majority category is theirs.

    ``purity = (1/n) * sum_clusters max_category overlap`` — easy to
    game with many tiny clusters, which is why the paper prefers the
    recall-aware F-measure; included as the simplest sanity metric.
    """
    table = _contingency(labels, truth)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_information(
    labels: np.ndarray, truth: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1].

    ``NMI = 2 I(A; B) / (H(A) + H(B))``. 1 for identical partitions
    (up to relabeling), ~0 for independent ones. Degenerate cases
    (either side a single cluster) return 0 by convention unless both
    are single clusters and identical, which returns 1.
    """
    table = _contingency(labels, truth).astype(np.float64)
    n = table.sum()
    p_joint = table / n
    p_a = p_joint.sum(axis=1)
    p_b = p_joint.sum(axis=0)

    def entropy(p: np.ndarray) -> float:
        nz = p > 0
        return float(-(p[nz] * np.log(p[nz])).sum())

    h_a, h_b = entropy(p_a), entropy(p_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    outer = np.outer(p_a, p_b)
    nz = p_joint > 0
    mutual = float(
        (p_joint[nz] * np.log(p_joint[nz] / outer[nz])).sum()
    )
    return 2.0 * mutual / (h_a + h_b)


def adjusted_rand_index(
    labels: np.ndarray, truth: np.ndarray
) -> float:
    """Adjusted Rand index (chance-corrected pair agreement).

    1 for identical partitions, ≈0 for random ones, can be negative
    for adversarial disagreement.
    """
    table = _contingency(labels, truth).astype(np.float64)
    n = table.sum()

    def comb2(x: np.ndarray | float) -> np.ndarray | float:
        return x * (x - 1.0) / 2.0

    sum_cells = float(comb2(table).sum())
    sum_rows = float(comb2(table.sum(axis=1)).sum())
    sum_cols = float(comb2(table.sum(axis=0)).sum())
    total_pairs = float(comb2(n))
    expected = sum_rows * sum_cols / total_pairs if total_pairs else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0 if sum_cells == expected else 0.0
    return (sum_cells - expected) / (max_index - expected)


def flatten_ground_truth(
    clustering: Clustering, ground_truth: GroundTruth
) -> tuple[np.ndarray, np.ndarray]:
    """Align a clustering with (possibly overlapping) ground truth.

    Returns ``(labels, truth)`` restricted to labeled nodes, with each
    node's *first* category as its flat truth label — the standard way
    to apply partition metrics to overlapping annotations.
    """
    if clustering.n_nodes != ground_truth.n_nodes:
        raise EvaluationError(
            f"clustering covers {clustering.n_nodes} nodes but ground "
            f"truth covers {ground_truth.n_nodes}"
        )
    membership = ground_truth.membership.tocsr()
    labeled = ground_truth.labeled_mask()
    first_category = np.full(ground_truth.n_nodes, -1, dtype=np.int64)
    counts = np.diff(membership.indptr)
    has = counts > 0
    first_category[has] = membership.indices[
        membership.indptr[:-1][has]
    ]
    idx = np.flatnonzero(labeled)
    if idx.size == 0:
        raise EvaluationError("ground truth labels no nodes")
    return clustering.labels[idx], first_category[idx]
