"""Graph substrate: directed/undirected sparse graphs, IO, generators, stats.

This subpackage provides the data structures every other part of the
library builds on:

- :class:`~repro.graph.digraph.DirectedGraph` — a CSR-backed directed
  graph with optional node names, the input type of every symmetrization.
- :class:`~repro.graph.ugraph.UndirectedGraph` — a symmetric CSR-backed
  weighted graph, the output type of every symmetrization and the input
  type of every clustering algorithm.
- :mod:`~repro.graph.io` — plain-text edge-list, METIS and JSON formats.
- :mod:`~repro.graph.generators` — random directed graph models
  (directed SBM, power-law/preferential attachment, Kronecker,
  list-pattern motifs) used to build the synthetic datasets.
- :mod:`~repro.graph.stats` — degree distributions and reciprocity.
"""

from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph

__all__ = ["DirectedGraph", "UndirectedGraph"]
