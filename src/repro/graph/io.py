"""Reading and writing graphs in common plain-text formats.

Three formats are supported:

- **Edge list**: one ``src dst [weight]`` triple per line; ``#`` comments.
  The format the SNAP / Mislove et al. social-network datasets use.
- **METIS**: the format consumed by the METIS family of partitioners
  (1-indexed adjacency lists with a ``n_nodes n_edges [fmt]`` header).
  Only undirected graphs can be written in this format.
- **JSON**: a self-describing format that round-trips node names.
"""

from __future__ import annotations

import json
import math
import warnings
from pathlib import Path

import scipy.sparse as sp

from repro.exceptions import GraphFormatError, ValidationWarning
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "read_json_graph",
    "write_json_graph",
]


#: Edges buffered per flush in streaming reads: bounds resident parse
#: state to ~24 MB of Python floats/ints however large the input file.
STREAM_CHUNK_EDGES = 1 << 18


def read_edge_list(
    path: str | Path,
    directed: bool = True,
    comment: str = "#",
    n_nodes: int | None = None,
    streaming: bool = False,
    store_dir: str | Path | None = None,
    chunk_edges: int = STREAM_CHUNK_EDGES,
) -> DirectedGraph | UndirectedGraph:
    """Read a whitespace-separated edge list.

    Each non-comment line is ``src dst`` or ``src dst weight`` with
    non-negative integer node ids and finite weights. Returns a
    :class:`DirectedGraph` unless ``directed=False``. Malformed lines
    — including negative node ids and ``nan``/``inf`` weights, which
    ``int()``/``float()`` happily parse — raise
    :class:`~repro.exceptions.GraphFormatError` naming the file and
    line number. Duplicate edges are legal (weights sum) but reported
    with a :class:`~repro.exceptions.ValidationWarning`.

    With ``streaming=True`` (directed graphs only) the file is parsed
    in chunks of ``chunk_edges`` lines straight into an out-of-core
    :class:`~repro.linalg.mmcsr.MmapCSRBuilder`, so ingest peak RSS
    is O(chunk) instead of O(edges) — the path for paper-scale inputs
    like the 77M-edge LiveJournal list. The finished store lands at
    ``store_dir`` (default: ``<path>.mmcsr`` next to the input;
    published atomically) and the returned graph is backed by it via
    :meth:`DirectedGraph.from_mmcsr`.
    """
    if streaming:
        return _read_edge_list_streaming(
            Path(path),
            directed=directed,
            comment=comment,
            n_nodes=n_nodes,
            store_dir=store_dir,
            chunk_edges=chunk_edges,
        )
    edges: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    n_duplicates = 0
    path = Path(path)
    with path.open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                src, dst = int(parts[0]), int(parts[1])
                weight = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
            if src < 0 or dst < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: negative node id in edge "
                    f"({src}, {dst}); node ids must be >= 0"
                )
            if not math.isfinite(weight):
                raise GraphFormatError(
                    f"{path}:{lineno}: non-finite edge weight "
                    f"{parts[2]!r}; weights must be finite numbers"
                )
            if (src, dst) in seen:
                n_duplicates += 1
            seen.add((src, dst))
            edges.append((src, dst, weight))
    if not edges and n_nodes is None:
        raise GraphFormatError(f"{path}: no edges and no n_nodes given")
    if n_duplicates:
        warnings.warn(
            ValidationWarning(
                f"{path}: {n_duplicates} duplicate edge line(s); "
                "their weights are summed",
                code="duplicate_edges",
            ),
            stacklevel=2,
        )
    cls = DirectedGraph if directed else UndirectedGraph
    return cls.from_edges(edges, n_nodes=n_nodes)


def _read_edge_list_streaming(
    path: Path,
    directed: bool,
    comment: str,
    n_nodes: int | None,
    store_dir: str | Path | None,
    chunk_edges: int,
) -> DirectedGraph:
    """Chunked edge-list ingest into a memory-mapped CSR store.

    Line validation is identical to the in-RAM path; the O(edges)
    ``seen`` set is replaced by the builder's compaction pass, which
    merges duplicates on disk and reports how many it merged.
    """
    from repro.linalg.mmcsr import MmapCSRBuilder

    if not directed:
        raise GraphFormatError(
            "streaming edge-list reads produce DirectedGraph only; "
            "symmetrize the result for an undirected view"
        )
    if chunk_edges < 1:
        raise GraphFormatError("chunk_edges must be >= 1")
    store_dir = (
        Path(store_dir)
        if store_dir is not None
        else path.with_name(path.name + ".mmcsr")
    )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_edges = 0
    with MmapCSRBuilder(
        store_dir, n_rows=n_nodes, n_cols=n_nodes, square=True
    ) as builder:
        with path.open() as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line or line.startswith(comment):
                    continue
                parts = line.split()
                if len(parts) not in (2, 3):
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 2 or 3 fields, "
                        f"got {len(parts)}"
                    )
                try:
                    src, dst = int(parts[0]), int(parts[1])
                    weight = (
                        float(parts[2]) if len(parts) == 3 else 1.0
                    )
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: {exc}"
                    ) from exc
                if src < 0 or dst < 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: negative node id in edge "
                        f"({src}, {dst}); node ids must be >= 0"
                    )
                if not math.isfinite(weight):
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-finite edge weight "
                        f"{parts[2]!r}; weights must be finite numbers"
                    )
                rows.append(src)
                cols.append(dst)
                vals.append(weight)
                n_edges += 1
                if len(rows) >= chunk_edges:
                    builder.add_chunk(rows, cols, vals)
                    rows, cols, vals = [], [], []
        if rows:
            builder.add_chunk(rows, cols, vals)
        if not n_edges and n_nodes is None:
            raise GraphFormatError(
                f"{path}: no edges and no n_nodes given"
            )
        store = builder.finalize()
    if builder.n_duplicates:
        warnings.warn(
            ValidationWarning(
                f"{path}: {builder.n_duplicates} duplicate edge "
                "line(s); their weights are summed",
                code="duplicate_edges",
            ),
            stacklevel=3,
        )
    return DirectedGraph.from_mmcsr(store)


def write_edge_list(
    graph: DirectedGraph | UndirectedGraph,
    path: str | Path,
    write_weights: bool = True,
) -> None:
    """Write a graph as a ``src dst [weight]`` edge list.

    Undirected graphs write each edge once (``i <= j``)."""
    path = Path(path)
    with path.open("w") as f:
        f.write(f"# nodes: {graph.n_nodes}\n")
        for i, j, w in graph.edges():
            if write_weights:
                f.write(f"{i} {j} {w:g}\n")
            else:
                f.write(f"{i} {j}\n")


def read_metis(path: str | Path) -> UndirectedGraph:
    """Read a graph in METIS format (1-indexed adjacency lists).

    Supports the plain and edge-weighted (``fmt`` code 1) variants.
    """
    path = Path(path)
    with path.open() as f:
        lines = [
            ln.strip()
            for ln in f
            if ln.strip() and not ln.lstrip().startswith("%")
        ]
    if not lines:
        raise GraphFormatError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"{path}: bad METIS header {lines[0]!r}")
    n_nodes = int(header[0])
    declared_edges = int(header[1])
    fmt = header[2] if len(header) >= 3 else "0"
    has_edge_weights = fmt.endswith("1")
    if len(lines) - 1 != n_nodes:
        raise GraphFormatError(
            f"{path}: header declares {n_nodes} nodes but file has "
            f"{len(lines) - 1} adjacency lines"
        )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i, line in enumerate(lines[1:]):
        fields = line.split()
        if has_edge_weights:
            if len(fields) % 2 != 0:
                raise GraphFormatError(
                    f"{path}: node {i + 1}: odd number of fields with "
                    "edge weights enabled"
                )
            pairs = zip(fields[0::2], fields[1::2])
            for nbr_s, w_s in pairs:
                rows.append(i)
                cols.append(int(nbr_s) - 1)
                vals.append(float(w_s))
        else:
            for nbr_s in fields:
                rows.append(i)
                cols.append(int(nbr_s) - 1)
                vals.append(1.0)
    if cols and (min(cols) < 0 or max(cols) >= n_nodes):
        raise GraphFormatError(f"{path}: neighbor index out of range")
    adj = sp.coo_array((vals, (rows, cols)), shape=(n_nodes, n_nodes)).tocsr()
    graph = UndirectedGraph(adj)
    if graph.n_edges != declared_edges:
        raise GraphFormatError(
            f"{path}: header declares {declared_edges} edges, "
            f"found {graph.n_edges}"
        )
    return graph


def write_metis(graph: UndirectedGraph, path: str | Path) -> None:
    """Write an undirected graph in METIS format with edge weights.

    METIS cannot represent self-loops; they are dropped with the weight
    information preserved on the remaining edges. Edge weights are
    rounded to positive integers (METIS requires integral weights);
    weights below 0.5 round up to 1 so no edge silently disappears.
    """
    graph = graph.without_self_loops()
    adj = graph.adjacency
    path = Path(path)
    with path.open("w") as f:
        f.write(f"{graph.n_nodes} {graph.n_edges} 001\n")
        for i in range(graph.n_nodes):
            start, end = adj.indptr[i], adj.indptr[i + 1]
            fields: list[str] = []
            for j, w in zip(adj.indices[start:end], adj.data[start:end]):
                int_w = max(1, int(round(w)))
                fields.append(f"{j + 1} {int_w}")
            f.write(" ".join(fields) + "\n")


def read_json_graph(path: str | Path) -> DirectedGraph | UndirectedGraph:
    """Read a graph written by :func:`write_json_graph`."""
    path = Path(path)
    with path.open() as f:
        payload = json.load(f)
    try:
        directed = bool(payload["directed"])
        n_nodes = int(payload["n_nodes"])
        edges = [
            (int(i), int(j), float(w)) for i, j, w in payload["edges"]
        ]
        names = payload.get("node_names")
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphFormatError(f"{path}: malformed JSON graph: {exc}") from exc
    cls = DirectedGraph if directed else UndirectedGraph
    return cls.from_edges(edges, n_nodes=n_nodes, node_names=names)


def write_json_graph(
    graph: DirectedGraph | UndirectedGraph, path: str | Path
) -> None:
    """Write a graph (with node names, if any) as JSON."""
    payload = {
        "directed": isinstance(graph, DirectedGraph),
        "n_nodes": graph.n_nodes,
        "edges": [[i, j, w] for i, j, w in graph.edges()],
        "node_names": graph.node_names,
    }
    path = Path(path)
    with path.open("w") as f:
        json.dump(payload, f)
