"""A CSR-backed directed graph.

:class:`DirectedGraph` is the input type of every symmetrization in
:mod:`repro.symmetrize`. It is a thin, validated wrapper around a
``scipy.sparse.csr_array`` adjacency matrix ``A`` where ``A[i, j] > 0``
means there is a directed edge ``i -> j`` with that weight — the same
convention the paper uses (in a citation graph, paper *i* cites paper
*j*).

Design notes
------------
- The wrapper is immutable by convention: operations return new graphs.
- Node names are optional; algorithms work on integer indices, names are
  for reporting (e.g. the "top weighted edges" table of the paper).
- Validation is on by default and checked once at construction so the
  rest of the library can assume a canonical, non-negative CSR matrix.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

__all__ = ["DirectedGraph"]


def _as_csr(matrix: object) -> sp.csr_array:
    """Convert any scipy-sparse / dense 2-D input to a canonical csr_array."""
    if isinstance(matrix, sp.csr_array):
        csr = matrix.copy()
    elif sp.issparse(matrix):
        csr = sp.csr_array(matrix)
    else:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise GraphError(f"adjacency must be 2-D, got shape {arr.shape}")
        csr = sp.csr_array(arr)
    csr = csr.astype(np.float64)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    csr.sort_indices()
    return csr


class DirectedGraph:
    """A weighted directed graph stored as a CSR adjacency matrix.

    Parameters
    ----------
    adjacency:
        Square matrix-like (scipy sparse or dense). ``adjacency[i, j]``
        is the weight of the directed edge ``i -> j``; zero means no edge.
    node_names:
        Optional sequence of ``n`` hashable names (usually strings) used
        in reports. Defaults to ``None`` (integer indices are used).
    validate:
        Validation level. ``True`` (default, same as ``"basic"``)
        rejects non-square matrices, negative and non-finite weights;
        ``"full"`` additionally emits
        :class:`~repro.exceptions.ValidationWarning` for structural
        oddities (self-loops, dangling and isolated nodes); ``False``
        (same as ``"none"``) skips all checks.

    Examples
    --------
    >>> g = DirectedGraph.from_edges([(0, 1), (1, 2)], n_nodes=3)
    >>> g.n_nodes, g.n_edges
    (3, 2)
    >>> g.has_edge(0, 1), g.has_edge(1, 0)
    (True, False)
    """

    __slots__ = ("_adj", "_names", "_name_index", "_store")

    def __init__(
        self,
        adjacency: object,
        node_names: Sequence[object] | None = None,
        validate: bool | str = True,
    ) -> None:
        from repro.validate.invariants import (
            coerce_level,
            validate_directed_graph,
        )

        csr = _as_csr(adjacency)
        level = coerce_level(validate)
        if level != "none":
            report = validate_directed_graph(csr, level=level)
            report.raise_errors()
            report.emit_warnings(stacklevel=3)
        self._adj = csr
        self._store = None
        if node_names is not None:
            names = list(node_names)
            if len(names) != csr.shape[0]:
                raise GraphError(
                    f"{len(names)} node names for {csr.shape[0]} nodes"
                )
            self._names: list[object] | None = names
        else:
            self._names = None
        self._name_index: dict[object, int] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        n_nodes: int | None = None,
        node_names: Sequence[object] | None = None,
    ) -> "DirectedGraph":
        """Build a graph from an iterable of ``(src, dst)`` or
        ``(src, dst, weight)`` tuples.

        Duplicate edges have their weights summed. ``n_nodes`` defaults
        to ``max(index) + 1``.
        """
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                i, j = edge  # type: ignore[misc]
                w = 1.0
            elif len(edge) == 3:
                i, j, w = edge  # type: ignore[misc]
            else:
                raise GraphError(f"edge must have 2 or 3 entries, got {edge!r}")
            rows.append(int(i))
            cols.append(int(j))
            vals.append(float(w))
        if n_nodes is None:
            if not rows:
                raise GraphError(
                    "cannot infer n_nodes from an empty edge list; "
                    "pass n_nodes explicitly"
                )
            n_nodes = max(max(rows), max(cols)) + 1
        if rows and (max(rows) >= n_nodes or max(cols) >= n_nodes):
            raise GraphError(
                f"edge endpoint out of range for n_nodes={n_nodes}"
            )
        if rows and (min(rows) < 0 or min(cols) < 0):
            raise GraphError("edge endpoints must be non-negative")
        adj = sp.coo_array(
            (vals, (rows, cols)), shape=(n_nodes, n_nodes)
        ).tocsr()
        return cls(adj, node_names=node_names)

    @classmethod
    def from_mmcsr(
        cls,
        store: object,
        node_names: Sequence[object] | None = None,
        validate: bool | str = True,
    ) -> "DirectedGraph":
        """Wrap an out-of-core :class:`~repro.linalg.mmcsr.MmapCSR`
        store (or its directory path) without copying the matrix.

        The adjacency becomes a ``csr_array`` of views over the
        store's memory-mapped buffers: the normal constructor's
        canonicalizing copy (:func:`_as_csr`) is bypassed, which is
        sound because finalized stores are canonical by construction
        — rows sorted by column, duplicates summed, float64 data.
        Validation (on by default) streams through the mapped data
        once without materializing it.

        The store handle is kept on the graph (:attr:`mmap_store`),
        so out-of-core-aware kernels can hand workers the store path
        instead of pickled matrices.
        """
        from repro.linalg.mmcsr import MmapCSR
        from repro.validate.invariants import (
            coerce_level,
            validate_directed_graph,
        )

        if not isinstance(store, MmapCSR):
            store = MmapCSR.open(store)  # type: ignore[arg-type]
        n_rows, n_cols = store.shape
        if n_rows != n_cols:
            raise GraphError(
                f"adjacency store must be square, got {store.shape}"
            )
        csr = store.to_scipy()
        level = coerce_level(validate)
        if level != "none":
            report = validate_directed_graph(csr, level=level)
            report.raise_errors()
            report.emit_warnings(stacklevel=3)
        graph = cls.__new__(cls)
        graph._adj = csr
        graph._store = store
        if node_names is not None:
            names = list(node_names)
            if len(names) != n_rows:
                raise GraphError(
                    f"{len(names)} node names for {n_rows} nodes"
                )
            graph._names = names
        else:
            graph._names = None
        graph._name_index = None
        return graph

    @classmethod
    def empty(cls, n_nodes: int) -> "DirectedGraph":
        """An edgeless directed graph on ``n_nodes`` nodes."""
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        return cls(sp.csr_array((n_nodes, n_nodes), dtype=np.float64))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> sp.csr_array:
        """The CSR adjacency matrix ``A`` (``A[i, j]`` = weight of i->j)."""
        return self._adj

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._adj.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of stored directed edges (non-zero entries of ``A``)."""
        return int(self._adj.nnz)

    @property
    def mmap_store(self) -> object | None:
        """The backing :class:`~repro.linalg.mmcsr.MmapCSR` store when
        this graph was built with :meth:`from_mmcsr`, else ``None``."""
        return self._store

    @property
    def node_names(self) -> list[object] | None:
        """Node names as supplied at construction, or ``None``."""
        return None if self._names is None else list(self._names)

    def name_of(self, index: int) -> object:
        """The name of node ``index`` (the index itself if unnamed)."""
        if self._names is None:
            return index
        return self._names[index]

    def index_of(self, name: object) -> int:
        """The index of the node called ``name``.

        Raises :class:`~repro.exceptions.GraphError` for unknown names
        or when the graph is unnamed.
        """
        if self._names is None:
            raise GraphError("graph has no node names")
        if self._name_index is None:
            self._name_index = {n: i for i, n in enumerate(self._names)}
        try:
            return self._name_index[name]
        except KeyError:
            raise GraphError(f"unknown node name: {name!r}") from None

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the directed edge ``i -> j`` exists."""
        return self.edge_weight(i, j) != 0.0

    def edge_weight(self, i: int, j: int) -> float:
        """Weight of the edge ``i -> j`` (0.0 if absent)."""
        start, end = self._adj.indptr[i], self._adj.indptr[i + 1]
        pos = np.searchsorted(self._adj.indices[start:end], j)
        if pos < end - start and self._adj.indices[start + pos] == j:
            return float(self._adj.data[start + pos])
        return 0.0

    def successors(self, i: int) -> np.ndarray:
        """Indices ``j`` with an edge ``i -> j``."""
        start, end = self._adj.indptr[i], self._adj.indptr[i + 1]
        return self._adj.indices[start:end].copy()

    def predecessors(self, i: int) -> np.ndarray:
        """Indices ``j`` with an edge ``j -> i``."""
        csc = self._adj.tocsc()
        start, end = csc.indptr[i], csc.indptr[i + 1]
        return np.sort(csc.indices[start:end])

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Iterate over ``(src, dst, weight)`` for every stored edge."""
        coo = self._adj.tocoo()
        for i, j, w in zip(coo.row, coo.col, coo.data):
            yield int(i), int(j), float(w)

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def out_degrees(self, weighted: bool = False) -> np.ndarray:
        """Out-degree of every node.

        With ``weighted=True`` this is the sum of outgoing edge weights;
        otherwise the count of outgoing edges.
        """
        if weighted:
            return np.asarray(self._adj.sum(axis=1)).ravel()
        return np.diff(self._adj.indptr).astype(np.float64)

    def in_degrees(self, weighted: bool = False) -> np.ndarray:
        """In-degree of every node (count or weighted sum of in-edges)."""
        if weighted:
            return np.asarray(self._adj.sum(axis=0)).ravel()
        counts = np.zeros(self.n_nodes, dtype=np.float64)
        np.add.at(counts, self._adj.indices, 1.0)
        return counts

    def total_degrees(self, weighted: bool = False) -> np.ndarray:
        """Sum of in- and out-degree per node."""
        return self.out_degrees(weighted) + self.in_degrees(weighted)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "DirectedGraph":
        """The graph with every edge reversed."""
        return DirectedGraph(
            self._adj.T.tocsr(), node_names=self._names, validate=False
        )

    def with_self_loops(self, weight: float = 1.0) -> "DirectedGraph":
        """Return ``A + weight * I`` — the paper's §3.3 trick of setting
        ``A := A + I`` before Bibliometric symmetrization so original
        edges survive into the symmetrized graph."""
        eye = sp.eye_array(self.n_nodes, format="csr") * float(weight)
        return DirectedGraph(
            (self._adj + eye).tocsr(), node_names=self._names, validate=False
        )

    def without_self_loops(self) -> "DirectedGraph":
        """Return a copy with the diagonal removed."""
        adj = self._adj.tolil(copy=True)
        adj.setdiag(0.0)
        return DirectedGraph(
            adj.tocsr(), node_names=self._names, validate=False
        )

    def subgraph(self, nodes: Sequence[int]) -> "DirectedGraph":
        """The induced subgraph on ``nodes`` (order preserved)."""
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_nodes):
            raise GraphError("subgraph node index out of range")
        sub = self._adj[idx][:, idx]
        names = None if self._names is None else [self._names[i] for i in idx]
        return DirectedGraph(sub, node_names=names, validate=False)

    def largest_weakly_connected_component(self) -> "DirectedGraph":
        """The induced subgraph on the largest weakly connected component."""
        n_comp, labels = sp.csgraph.connected_components(
            self._adj, directed=True, connection="weak"
        )
        if n_comp <= 1:
            return self
        sizes = np.bincount(labels)
        keep = np.flatnonzero(labels == sizes.argmax())
        return self.subgraph(keep)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        named = "" if self._names is None else ", named"
        return (
            f"DirectedGraph(n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges}{named})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        if self.n_nodes != other.n_nodes:
            return False
        diff = (self._adj - other._adj).tocsr()
        diff.eliminate_zeros()
        return diff.nnz == 0 and self._names == other._names

    def __hash__(self) -> int:  # graphs are mutable-ish containers
        raise TypeError("DirectedGraph is not hashable")
