"""Descriptive statistics of directed and symmetrized graphs.

These are the quantities the paper reports in Table 1 (vertices, edges,
percentage of symmetric links) and Figure 4 (degree distributions of
the symmetrized Wikipedia graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph

__all__ = [
    "percent_symmetric_links",
    "degree_histogram",
    "log_binned_degree_histogram",
    "DegreeSummary",
    "degree_summary",
    "degree_assortativity",
    "power_law_exponent_estimate",
]


def percent_symmetric_links(graph: DirectedGraph) -> float:
    """Percentage of directed edges whose reverse edge also exists.

    This is the "Percentage of symmetric links" column of Table 1:
    42.1 for Wikipedia, 7.7 for Cora, 62.4 for Flickr, 73.4 for
    LiveJournal. Self-loops are trivially symmetric and counted as such.
    """
    adj = graph.adjacency
    if adj.nnz == 0:
        return 0.0
    pattern = adj.copy()
    pattern.data[:] = 1.0
    reciprocated = pattern.multiply(pattern.T)
    return 100.0 * reciprocated.nnz / pattern.nnz


def degree_histogram(
    degrees: np.ndarray, max_degree: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Exact histogram ``(degree_values, counts)`` of integer degrees."""
    deg = np.asarray(np.round(degrees), dtype=np.int64)
    deg = np.clip(deg, 0, None)
    if max_degree is not None:
        deg = deg[deg <= max_degree]
    if deg.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    counts = np.bincount(deg)
    values = np.flatnonzero(counts)
    return values, counts[values]


def log_binned_degree_histogram(
    degrees: np.ndarray, n_bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Log-binned degree histogram ``(bin_centers, counts)``.

    Zero-degree nodes are excluded (they have no defined log-bin); use
    :func:`degree_summary` to count isolated nodes. This is the form in
    which Figure 4 plots the degree distributions of the symmetrized
    Wikipedia graphs.
    """
    deg = np.asarray(degrees, dtype=np.float64)
    deg = deg[deg > 0]
    if deg.size == 0:
        return np.array([]), np.array([])
    lo, hi = deg.min(), deg.max()
    if lo == hi:
        return np.array([lo]), np.array([deg.size])
    edges = np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)
    counts, _ = np.histogram(deg, bins=edges)
    centers = np.sqrt(edges[:-1] * edges[1:])
    keep = counts > 0
    return centers[keep], counts[keep]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of a degree distribution.

    Attributes
    ----------
    n_nodes:
        Total node count.
    n_isolated:
        Nodes with degree zero (the "singletons" of §5.3 — the nodes the
        pruned Bibliometric graph strands).
    min, median, mean, max:
        Order statistics of the degree sequence.
    frac_in_medium_band:
        Fraction of nodes with degree in ``[band_lo, band_hi]`` — the
        paper observes Degree-discounted symmetrization concentrates
        mass in the 50–200 band (the typical cluster size).
    frac_hubs:
        Fraction of nodes with degree above ``band_hi`` ("hub" nodes,
        which Degree-discounting eliminates per Figure 4).
    band:
        The ``(band_lo, band_hi)`` thresholds used.
    """

    n_nodes: int
    n_isolated: int
    min: float
    median: float
    mean: float
    max: float
    frac_in_medium_band: float
    frac_hubs: float
    band: tuple[float, float]


def degree_summary(
    degrees: np.ndarray,
    band: tuple[float, float] = (50.0, 200.0),
) -> DegreeSummary:
    """Summarize a degree sequence (see :class:`DegreeSummary`)."""
    deg = np.asarray(degrees, dtype=np.float64)
    n = deg.size
    if n == 0:
        return DegreeSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, band)
    lo, hi = band
    in_band = np.count_nonzero((deg >= lo) & (deg <= hi))
    hubs = np.count_nonzero(deg > hi)
    return DegreeSummary(
        n_nodes=n,
        n_isolated=int(np.count_nonzero(deg == 0)),
        min=float(deg.min()),
        median=float(np.median(deg)),
        mean=float(deg.mean()),
        max=float(deg.max()),
        frac_in_medium_band=in_band / n,
        frac_hubs=hubs / n,
        band=band,
    )


def power_law_exponent_estimate(
    degrees: np.ndarray, d_min: float = 1.0
) -> float:
    """Maximum-likelihood estimate of a power-law exponent.

    Uses the standard continuous Hill estimator
    ``gamma = 1 + n / sum(log(d / d_min))`` over degrees ``>= d_min``.
    Useful to check the synthetic generators produce the heavy tails
    the paper's datasets have. Returns ``nan`` when fewer than two
    degrees qualify.
    """
    deg = np.asarray(degrees, dtype=np.float64)
    deg = deg[deg >= d_min]
    if deg.size < 2:
        return float("nan")
    log_ratio = np.log(deg / d_min)
    total = log_ratio.sum()
    if total <= 0:
        return float("inf")
    return 1.0 + deg.size / total


def degree_assortativity(graph: DirectedGraph) -> float:
    """Out-degree/in-degree assortativity of the directed edges.

    The Pearson correlation, over edges ``u -> v``, of the source's
    out-degree with the target's in-degree. Real web/social graphs are
    typically *disassortative* (hubs link to low-degree nodes and vice
    versa); the synthetic stand-ins should land in a similar regime.
    Returns ``nan`` for graphs with fewer than two edges or constant
    degrees.
    """
    adj = graph.adjacency
    if adj.nnz < 2:
        return float("nan")
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    coo = adj.tocoo()
    x = out_deg[coo.row]
    y = in_deg[coo.col]
    if np.all(x == x[0]) or np.all(y == y[0]):
        return float("nan")
    return float(np.corrcoef(x, y)[0, 1])


def undirected_degree_summary(
    graph: UndirectedGraph, band: tuple[float, float] = (50.0, 200.0)
) -> DegreeSummary:
    """Degree summary of an undirected graph (unweighted degrees)."""
    return degree_summary(graph.degrees(weighted=False), band=band)
