"""Random directed-graph generators.

These primitives are composed by :mod:`repro.datasets.synthetic` into
stand-ins for the paper's four datasets (Wikipedia, Cora, Flickr,
LiveJournal). Each generator produces phenomena the paper's analysis
depends on:

- :func:`directed_sbm` — planted cluster structure via direct links
  (the signal `A + Aᵀ` symmetrization can see).
- :func:`shared_neighbor_clusters` — clusters whose members share in-
  and out-neighbours *without linking to each other* (the Figure-1 /
  Guzmania signal that only similarity-based symmetrizations see).
- :func:`power_law_digraph` — heavy-tailed in/out degrees.
- :func:`add_global_hubs` — "Area"/"Population density"-style hub nodes
  that poison the Bibliometric symmetrization (§3.5, Table 5).
- :func:`kronecker_digraph` — the stochastic Kronecker model the paper
  cites [14] as a realistic directed generator (without ground truth).
- :func:`reciprocate_edges` — controls the percentage of symmetric
  links (Table 1's reciprocity column).

All generators take a ``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DatasetError
from repro.graph.digraph import DirectedGraph

__all__ = [
    "directed_sbm",
    "power_law_digraph",
    "power_law_edge_chunks",
    "power_law_mmcsr",
    "shared_neighbor_clusters",
    "add_global_hubs",
    "add_link_farm",
    "reciprocate_edges",
    "kronecker_digraph",
    "sample_power_law_degrees",
    "figure1_graph",
    "combine",
]


def _sample_block_edges(
    rng: np.random.Generator,
    row_nodes: np.ndarray,
    col_nodes: np.ndarray,
    p: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample edges of an Erdős–Rényi block with density ``p``.

    Samples ``Binomial(|rows|*|cols|, p)`` endpoint pairs with
    replacement; duplicates are merged by the sparse-matrix sum later,
    which slightly thins very dense blocks — irrelevant at the densities
    used here and standard for sparse SBM samplers.
    """
    n_pairs = row_nodes.size * col_nodes.size
    if n_pairs == 0 or p <= 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    m = rng.binomial(n_pairs, min(p, 1.0))
    if m == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    rows = row_nodes[rng.integers(0, row_nodes.size, size=m)]
    cols = col_nodes[rng.integers(0, col_nodes.size, size=m)]
    return rows, cols


def directed_sbm(
    sizes: list[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    p_matrix: np.ndarray | None = None,
) -> tuple[DirectedGraph, np.ndarray]:
    """Directed stochastic block model.

    Parameters
    ----------
    sizes:
        Number of nodes per block.
    p_in, p_out:
        Edge probability within a block / between blocks. Ignored when
        ``p_matrix`` is given.
    p_matrix:
        Optional explicit ``k x k`` matrix of block-to-block densities.
    rng:
        Random generator.

    Returns
    -------
    (graph, labels):
        The sampled directed graph (self-loops removed, duplicate edges
        merged to weight 1) and the block label of each node.
    """
    if not sizes or min(sizes) <= 0:
        raise DatasetError("sizes must be a non-empty list of positive ints")
    k = len(sizes)
    if p_matrix is None:
        p_matrix = np.full((k, k), p_out, dtype=np.float64)
        np.fill_diagonal(p_matrix, p_in)
    else:
        p_matrix = np.asarray(p_matrix, dtype=np.float64)
        if p_matrix.shape != (k, k):
            raise DatasetError(
                f"p_matrix must be {k}x{k}, got {p_matrix.shape}"
            )
    if p_matrix.min() < 0 or p_matrix.max() > 1:
        raise DatasetError("block densities must lie in [0, 1]")

    n = int(sum(sizes))
    labels = np.repeat(np.arange(k), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    blocks = [np.arange(offsets[b], offsets[b + 1]) for b in range(k)]

    all_rows: list[np.ndarray] = []
    all_cols: list[np.ndarray] = []
    for bi in range(k):
        for bj in range(k):
            rows, cols = _sample_block_edges(
                rng, blocks[bi], blocks[bj], p_matrix[bi, bj]
            )
            all_rows.append(rows)
            all_cols.append(cols)
    rows = np.concatenate(all_rows) if all_rows else np.array([], dtype=int)
    cols = np.concatenate(all_cols) if all_cols else np.array([], dtype=int)
    keep = rows != cols  # no self-loops
    rows, cols = rows[keep], cols[keep]
    adj = sp.coo_array(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1.0  # merge duplicates to unweighted edges
    return DirectedGraph(adj), labels


def sample_power_law_degrees(
    n: int,
    gamma: float,
    d_min: int,
    d_max: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``n`` integer degrees from a truncated power law.

    Uses inverse-transform sampling of the continuous Pareto density
    ``p(d) ~ d^-gamma`` on ``[d_min, d_max]`` and floors to integers —
    the standard way to get heavy-tailed degree sequences.
    """
    if gamma <= 1.0:
        raise DatasetError("power-law exponent gamma must be > 1")
    if not (1 <= d_min <= d_max):
        raise DatasetError("need 1 <= d_min <= d_max")
    u = rng.random(n)
    a = 1.0 - gamma
    lo, hi = float(d_min) ** a, float(d_max + 1) ** a
    degrees = (lo + u * (hi - lo)) ** (1.0 / a)
    return np.minimum(np.floor(degrees).astype(np.int64), d_max)


def power_law_digraph(
    n: int,
    rng: np.random.Generator,
    gamma_out: float = 2.2,
    gamma_in: float = 2.1,
    d_min: int = 2,
    d_max: int | None = None,
) -> DirectedGraph:
    """A directed graph with power-law out- and in-degrees.

    Out-degrees are sampled from a truncated power law; each node's
    targets are drawn (without self-loops) with probability proportional
    to per-node attractiveness weights that are themselves power-law
    distributed, yielding a heavy-tailed in-degree sequence. This is a
    directed "fitness model" — the simplest generator with independently
    tunable in/out tails.
    """
    if n < 2:
        raise DatasetError("power_law_digraph needs n >= 2")
    if d_max is None:
        d_max = max(d_min, int(np.sqrt(n) * 4))
    out_degrees = sample_power_law_degrees(n, gamma_out, d_min, d_max, rng)
    # In-degree attractiveness: Pareto weights with tail index gamma_in-1.
    attractiveness = rng.pareto(gamma_in - 1.0, size=n) + 1.0
    prob = attractiveness / attractiveness.sum()
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    total = int(out_degrees.sum())
    targets = rng.choice(n, size=total, p=prob)
    sources = np.repeat(np.arange(n), out_degrees)
    keep = sources != targets
    rows.append(sources[keep])
    cols.append(targets[keep])
    adj = sp.coo_array(
        (np.ones(keep.sum()), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    adj.data[:] = 1.0
    return DirectedGraph(adj)


def power_law_edge_chunks(
    n: int,
    rng: np.random.Generator,
    gamma_out: float = 2.2,
    gamma_in: float = 2.1,
    d_min: int = 2,
    d_max: int | None = None,
    chunk_edges: int = 1 << 20,
):
    """Yield the edges of a power-law digraph in bounded chunks.

    The same fitness model as :func:`power_law_digraph`, but emitted
    as ``(rows, cols, vals)`` chunks of at most ``chunk_edges`` edges
    so paper-scale graphs (fig. 8–9 run to millions of nodes) can be
    streamed straight into an out-of-core
    :class:`~repro.linalg.mmcsr.MmapCSRBuilder` without ever holding
    the full edge list in RAM — resident state is O(n) degree/weight
    arrays plus one chunk. Self-loops are dropped; duplicate target
    draws survive here and are merged downstream (the builder sums
    them, and :func:`power_law_mmcsr` re-binarizes).

    Unlike :func:`power_law_digraph`, ``d_max`` caps *both* tails:
    out-degrees through the sampled degree sequence, and in-degrees
    by ceiling the target-sampling weights so no node's expected
    in-degree exceeds ``d_max``. The raw Pareto weights (tail index
    ``gamma_in - 1``) concentrate a constant *fraction* of all edges
    on the top target as ``n`` grows, which makes any quantity driven
    by ``sum(d_in^2)`` — notably the all-pairs candidate count —
    scale with hub size rather than ``n``.
    """
    if n < 2:
        raise DatasetError("power_law_edge_chunks needs n >= 2")
    if chunk_edges < 1:
        raise DatasetError("chunk_edges must be >= 1")
    if d_max is None:
        d_max = max(d_min, int(np.sqrt(n) * 4))
    out_degrees = sample_power_law_degrees(n, gamma_out, d_min, d_max, rng)
    n_draws = int(out_degrees.sum())
    attractiveness = rng.pareto(gamma_in - 1.0, size=n) + 1.0
    prob = attractiveness / attractiveness.sum()
    # Ceiling the in-degree tail at d_max expected edges per target.
    # Clipping mass and renormalizing can push other entries over the
    # cap, so iterate; a feasible fixed point always exists because
    # the uniform distribution satisfies n * cap >= 1 (total draws
    # never exceed n * d_max).
    cap = d_max / max(n_draws, 1)
    for _ in range(8):
        over = prob > cap
        if not over.any():
            break
        prob = np.minimum(prob, cap)
        prob /= prob.sum()
    cdf = np.cumsum(prob)
    cdf /= cdf[-1]
    # cum_deg[i] = number of edges emitted by sources < i+1; the
    # source of global edge e is the first i with cum_deg[i] > e.
    cum_deg = np.cumsum(out_degrees)
    total = int(cum_deg[-1])
    for lo in range(0, total, chunk_edges):
        hi = min(lo + chunk_edges, total)
        edge_ids = np.arange(lo, hi, dtype=np.int64)
        sources = np.searchsorted(cum_deg, edge_ids, side="right")
        targets = np.searchsorted(cdf, rng.random(hi - lo))
        keep = sources != targets
        yield (
            sources[keep],
            targets[keep],
            np.ones(int(keep.sum())),
        )


def power_law_mmcsr(
    n: int,
    directory,
    rng: np.random.Generator,
    gamma_out: float = 2.2,
    gamma_in: float = 2.1,
    d_min: int = 2,
    d_max: int | None = None,
    chunk_edges: int = 1 << 20,
) -> DirectedGraph:
    """A power-law digraph built out-of-core under ``directory``.

    Streams :func:`power_law_edge_chunks` into an
    :class:`~repro.linalg.mmcsr.MmapCSRBuilder` and wraps the
    finished store with :meth:`DirectedGraph.from_mmcsr`, so peak
    resident memory stays O(n + chunk) however many edges are drawn
    — the generator behind the 100k/1M scale-bench points. Edges are
    unweighted: duplicate draws merged by the builder are clamped
    back to weight 1, matching :func:`power_law_digraph`.
    """
    from repro.linalg.mmcsr import MmapCSRBuilder

    with MmapCSRBuilder(directory, n_rows=n, n_cols=n) as builder:
        for rows, cols, vals in power_law_edge_chunks(
            n,
            rng,
            gamma_out=gamma_out,
            gamma_in=gamma_in,
            d_min=d_min,
            d_max=d_max,
            chunk_edges=chunk_edges,
        ):
            builder.add_chunk(rows, cols, vals)
        store = builder.finalize()
    if builder.n_duplicates:
        data = np.load(store.directory / "data.npy", mmap_mode="r+")
        np.minimum(data, 1.0, out=data)
        data.flush()
        del data
    return DirectedGraph.from_mmcsr(store, validate="none")


def shared_neighbor_clusters(
    n_clusters: int,
    members_per_cluster: int,
    shared_out_per_cluster: int,
    shared_in_per_cluster: int,
    rng: np.random.Generator,
    p_member_to_out: float = 0.9,
    p_in_to_member: float = 0.9,
    p_intra_member: float = 0.0,
) -> tuple[DirectedGraph, np.ndarray]:
    """Clusters held together only by shared in/out-neighbours.

    Each cluster consists of *member* nodes plus dedicated *shared-out*
    nodes (which members point to) and *shared-in* nodes (which point to
    members). With the default ``p_intra_member = 0`` the members never
    link to one another — the exact Figure-1 / Guzmania pattern that
    `A + Aᵀ` symmetrization cannot cluster but Bibliometric and
    Degree-discounted can.

    Returns
    -------
    (graph, labels):
        ``labels[v]`` is the cluster of node ``v`` for member nodes and
        ``-1`` for the shared-neighbour scaffolding nodes (which belong
        to no ground-truth cluster, like the pages "Poales" or "Ecuador"
        in the paper's Guzmania example).
    """
    if min(n_clusters, members_per_cluster) <= 0:
        raise DatasetError("need at least one cluster and one member")
    if min(shared_out_per_cluster, shared_in_per_cluster) < 0:
        raise DatasetError("shared neighbour counts must be >= 0")
    per = members_per_cluster + shared_out_per_cluster + shared_in_per_cluster
    n = n_clusters * per
    labels = np.full(n, -1, dtype=np.int64)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for c in range(n_clusters):
        base = c * per
        members = np.arange(base, base + members_per_cluster)
        out_nodes = np.arange(
            base + members_per_cluster,
            base + members_per_cluster + shared_out_per_cluster,
        )
        in_nodes = np.arange(
            base + members_per_cluster + shared_out_per_cluster, base + per
        )
        labels[members] = c
        r, co = _sample_block_edges(rng, members, out_nodes, p_member_to_out)
        rows.append(r)
        cols.append(co)
        r, co = _sample_block_edges(rng, in_nodes, members, p_in_to_member)
        rows.append(r)
        cols.append(co)
        if p_intra_member > 0:
            r, co = _sample_block_edges(rng, members, members, p_intra_member)
            keep = r != co
            rows.append(r[keep])
            cols.append(co[keep])
    row_arr = np.concatenate(rows) if rows else np.array([], dtype=int)
    col_arr = np.concatenate(cols) if cols else np.array([], dtype=int)
    adj = sp.coo_array(
        (np.ones(row_arr.size), (row_arr, col_arr)), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1.0
    return DirectedGraph(adj), labels


def add_global_hubs(
    graph: DirectedGraph,
    n_hubs: int,
    rng: np.random.Generator,
    p_point_to_hub: float = 0.5,
    p_hub_points_out: float = 0.0,
) -> tuple[DirectedGraph, np.ndarray]:
    """Append hub nodes that the whole graph points to.

    Models the "Area" / "Population density" pages of Wikipedia: pages
    across every category point to them, so in ``AAᵀ`` every pair of
    pages sharing such a hub gains spurious similarity. Returns the new
    graph and the indices of the hub nodes.
    """
    if n_hubs < 0:
        raise DatasetError("n_hubs must be >= 0")
    n = graph.n_nodes
    if n_hubs == 0:
        return graph, np.array([], dtype=np.int64)
    total = n + n_hubs
    hub_ids = np.arange(n, total)
    old = graph.adjacency.tocoo()
    rows = [old.row.astype(np.int64)]
    cols = [old.col.astype(np.int64)]
    vals = [old.data.astype(np.float64)]
    originals = np.arange(n)
    for h in hub_ids:
        pointers = originals[rng.random(n) < p_point_to_hub]
        rows.append(pointers)
        cols.append(np.full(pointers.size, h))
        vals.append(np.ones(pointers.size))
        if p_hub_points_out > 0:
            targets = originals[rng.random(n) < p_hub_points_out]
            rows.append(np.full(targets.size, h))
            cols.append(targets)
            vals.append(np.ones(targets.size))
    adj = sp.coo_array(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(total, total),
    ).tocsr()
    adj.data[:] = np.minimum(adj.data, 1.0)
    names = graph.node_names
    if names is not None:
        names = names + [f"hub_{i}" for i in range(n_hubs)]
    return DirectedGraph(adj, node_names=names), hub_ids


def reciprocate_edges(
    graph: DirectedGraph,
    target_percent: float,
    rng: np.random.Generator,
) -> DirectedGraph:
    """Add reverse edges until roughly ``target_percent`` of links are
    symmetric.

    Matches the Table-1 reciprocity column (7.7% for Cora up to 73.4%
    for LiveJournal). If the graph already meets the target, it is
    returned unchanged; reciprocity can only be raised, not lowered.
    """
    if not 0 <= target_percent <= 100:
        raise DatasetError("target_percent must be in [0, 100]")
    adj = graph.adjacency
    if adj.nnz == 0:
        return graph
    pattern = adj.copy()
    pattern.data[:] = 1.0
    sym = pattern.multiply(pattern.T)
    target_frac = target_percent / 100.0
    # Solve for the probability q of reversing each one-way edge:
    # after reversal, a one-way edge becomes two symmetric edges.
    one_way = pattern.nnz - sym.nnz
    if one_way <= 0:
        return graph
    # symmetric_after = sym + 2*q*one_way; total_after = nnz + q*one_way
    # target = symmetric_after / total_after  ->  solve for q.
    s, t = float(sym.nnz), float(pattern.nnz)
    denom = one_way * (2.0 - target_frac)
    q = (target_frac * t - s) / denom if denom > 0 else 0.0
    q = float(np.clip(q, 0.0, 1.0))
    if q == 0.0:
        return graph
    coo = (pattern - sym).tocoo()  # strictly one-way edges
    mask = rng.random(coo.nnz) < q
    new_rows = coo.col[mask]
    new_cols = coo.row[mask]
    old = adj.tocoo()
    adj2 = sp.coo_array(
        (
            np.concatenate([old.data, np.ones(new_rows.size)]),
            (
                np.concatenate([old.row, new_rows]),
                np.concatenate([old.col, new_cols]),
            ),
        ),
        shape=adj.shape,
    ).tocsr()
    return DirectedGraph(adj2, node_names=graph.node_names, validate=False)


def kronecker_digraph(
    initiator: np.ndarray,
    n_iterations: int,
    rng: np.random.Generator,
    edge_factor: float = 1.0,
) -> DirectedGraph:
    """Stochastic Kronecker graph (Leskovec et al., JMLR 2010).

    The paper's conclusion cites this as the available realistic
    directed generator — *without* ground-truth clusters, which is why
    the library also provides the planted-cluster generators above.

    Parameters
    ----------
    initiator:
        A small square probability matrix (typically 2x2), entries in
        [0, 1].
    n_iterations:
        Number of Kronecker powers; the result has ``m**n_iterations``
        nodes for an ``m x m`` initiator.
    edge_factor:
        Multiplier on the expected edge count
        ``(sum(initiator))**n_iterations``.
    """
    init = np.asarray(initiator, dtype=np.float64)
    if init.ndim != 2 or init.shape[0] != init.shape[1]:
        raise DatasetError("initiator must be square")
    if init.min() < 0 or init.max() > 1:
        raise DatasetError("initiator entries must lie in [0, 1]")
    if n_iterations < 1:
        raise DatasetError("n_iterations must be >= 1")
    m = init.shape[0]
    n = m**n_iterations
    expected_edges = int(round(edge_factor * init.sum() ** n_iterations))
    # Ball-dropping sampler: place each edge by descending the Kronecker
    # recursion, choosing a cell of the initiator at each level.
    flat = init.ravel() / init.sum()
    cells = rng.choice(m * m, size=(expected_edges, n_iterations), p=flat)
    cell_rows, cell_cols = cells // m, cells % m
    powers = m ** np.arange(n_iterations - 1, -1, -1)
    rows = (cell_rows * powers).sum(axis=1)
    cols = (cell_cols * powers).sum(axis=1)
    keep = rows != cols
    adj = sp.coo_array(
        (np.ones(keep.sum()), (rows[keep], cols[keep])), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1.0
    return DirectedGraph(adj)


def figure1_graph() -> tuple[DirectedGraph, dict[str, list[int]]]:
    """The idealized Figure-1 graph of the paper.

    Nodes 4 and 5 do not link to each other but point to the same nodes
    (6, 7, 8) and are pointed to by the same nodes (1, 2, 3), so they
    form a natural cluster that directed-Ncut methods and `A + Aᵀ`
    symmetrization miss.

    Returns the graph and a dict naming the node roles:
    ``{"sources": [1,2,3], "pair": [4,5], "sinks": [6,7,8]}``
    (0-indexed as built, with node 0 unused in the paper's numbering
    dropped — here sources are 0..2, the pair is 3..4, sinks are 5..7).
    """
    sources = [0, 1, 2]
    pair = [3, 4]
    sinks = [5, 6, 7]
    edges = [(s, p) for s in sources for p in pair]
    edges += [(p, t) for p in pair for t in sinks]
    # Light interconnection among sources and among sinks so they form
    # their own communities, as drawn in the figure.
    edges += [(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)]
    graph = DirectedGraph.from_edges(edges, n_nodes=8)
    return graph, {"sources": sources, "pair": pair, "sinks": sinks}


def add_link_farm(
    graph: DirectedGraph,
    n_spam: int,
    rng: np.random.Generator,
    boosted_targets: np.ndarray | list[int] | None = None,
    p_intra_farm: float = 0.8,
    n_camouflage_links: int = 2,
) -> tuple[DirectedGraph, np.ndarray]:
    """Append a link farm (the §6 "spam and link fraud" scenario).

    A link farm is a set of spam pages that densely interlink and all
    point at a small set of *boosted targets* to inflate their link
    authority; each spam page also emits a few camouflage links to
    random legitimate pages. The paper names web spam as the key open
    robustness question for its symmetrizations — this generator plus
    the spam ablation benchmark implement that study: because farm
    pages share essentially all their links with each other and with
    nothing else, similarity-based symmetrizations quarantine the farm
    into its own cluster, while in ``A + Aᵀ`` the boost edges directly
    attach the farm to its targets' cluster.

    Parameters
    ----------
    graph:
        The legitimate host graph.
    n_spam:
        Number of spam nodes to append.
    rng:
        Random generator.
    boosted_targets:
        Legitimate node indices the farm boosts; defaults to one
        random node.
    p_intra_farm:
        Density of the farm's internal link mesh.
    n_camouflage_links:
        Outgoing links from each spam page to random legitimate pages.

    Returns
    -------
    (graph, spam_ids):
        The expanded graph and the indices of the spam nodes.
    """
    if n_spam < 1:
        raise DatasetError("n_spam must be >= 1")
    if not 0 <= p_intra_farm <= 1:
        raise DatasetError("p_intra_farm must lie in [0, 1]")
    n = graph.n_nodes
    if boosted_targets is None:
        boosted_targets = np.array([int(rng.integers(n))])
    targets = np.asarray(boosted_targets, dtype=np.int64)
    if targets.size and (targets.min() < 0 or targets.max() >= n):
        raise DatasetError("boosted target index out of range")
    total = n + n_spam
    spam_ids = np.arange(n, total)
    old = graph.adjacency.tocoo()
    rows = [old.row.astype(np.int64)]
    cols = [old.col.astype(np.int64)]
    # Dense intra-farm mesh.
    r, c = _sample_block_edges(rng, spam_ids, spam_ids, p_intra_farm)
    keep = r != c
    rows.append(r[keep])
    cols.append(c[keep])
    # Boost links: every spam page points at every boosted target.
    for t in targets:
        rows.append(spam_ids)
        cols.append(np.full(n_spam, t))
    # Camouflage links to random legitimate pages.
    if n_camouflage_links > 0 and n > 0:
        cam_targets = rng.integers(0, n, size=n_spam * n_camouflage_links)
        rows.append(np.repeat(spam_ids, n_camouflage_links))
        cols.append(cam_targets)
    adj = sp.coo_array(
        (
            np.ones(sum(r.size for r in rows)),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(total, total),
    ).tocsr()
    adj.data[:] = np.minimum(adj.data, 1.0)
    names = graph.node_names
    if names is not None:
        names = names + [f"spam_{i}" for i in range(n_spam)]
    return DirectedGraph(adj, node_names=names), spam_ids


def combine(*graphs: DirectedGraph) -> DirectedGraph:
    """Union of edge sets of graphs over the same node set.

    All graphs must have the same number of nodes; overlapping edges
    keep weight 1 (edge presence is OR-ed, not summed).
    """
    if not graphs:
        raise DatasetError("combine() needs at least one graph")
    n = graphs[0].n_nodes
    for g in graphs[1:]:
        if g.n_nodes != n:
            raise DatasetError("all graphs must have the same node count")
    total = graphs[0].adjacency.copy()
    for g in graphs[1:]:
        total = total + g.adjacency
    total = total.tocsr()
    total.data[:] = 1.0
    return DirectedGraph(total, node_names=graphs[0].node_names)
