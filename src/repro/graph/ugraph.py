"""A symmetric CSR-backed weighted undirected graph.

:class:`UndirectedGraph` is the output type of every symmetrization and
the input type of every clustering algorithm in :mod:`repro.cluster`.
Its adjacency matrix is stored fully (both triangles) so that sparse
matrix-vector products and row slicing behave naturally; symmetry is
validated at construction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.digraph import _as_csr

__all__ = ["UndirectedGraph"]


class UndirectedGraph:
    """A weighted undirected graph stored as a symmetric CSR matrix.

    Parameters
    ----------
    adjacency:
        Square symmetric matrix-like. ``adjacency[i, j]`` is the weight
        of the undirected edge ``{i, j}``. The diagonal may carry
        self-loop weight.
    node_names:
        Optional node names carried over from the directed graph.
    validate:
        Validation level. ``True`` (default, same as ``"basic"``)
        checks squareness, finiteness, non-negativity and symmetry
        (up to a small numerical tolerance); ``"full"`` additionally
        emits :class:`~repro.exceptions.ValidationWarning` for
        self-loops and isolated nodes; ``False`` (``"none"``) skips
        all checks.

    Notes
    -----
    ``n_edges`` counts *undirected* edges: off-diagonal non-zeros divided
    by two, plus the number of self-loops. This matches the edge counts
    reported in Table 2 of the paper.
    """

    __slots__ = ("_adj", "_names")

    def __init__(
        self,
        adjacency: object,
        node_names: Sequence[object] | None = None,
        validate: bool | str = True,
    ) -> None:
        from repro.validate.invariants import (
            coerce_level,
            validate_undirected_graph,
        )

        csr = _as_csr(adjacency)
        level = coerce_level(validate)
        if level != "none":
            report = validate_undirected_graph(csr, level=level)
            report.raise_errors()
            report.emit_warnings(stacklevel=3)
            # Remove any numerical asymmetry so downstream algebra is exact.
            csr = ((csr + csr.T) * 0.5).tocsr()
            csr.sort_indices()
        self._adj = csr
        if node_names is not None:
            names = list(node_names)
            if len(names) != csr.shape[0]:
                raise GraphError(
                    f"{len(names)} node names for {csr.shape[0]} nodes"
                )
            self._names: list[object] | None = names
        else:
            self._names = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        n_nodes: int | None = None,
        node_names: Sequence[object] | None = None,
    ) -> "UndirectedGraph":
        """Build from ``(i, j[, w])`` tuples; each edge is stored in both
        directions. Duplicates are summed."""
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                i, j = edge  # type: ignore[misc]
                w = 1.0
            elif len(edge) == 3:
                i, j, w = edge  # type: ignore[misc]
            else:
                raise GraphError(f"edge must have 2 or 3 entries, got {edge!r}")
            i, j, w = int(i), int(j), float(w)
            rows.append(i)
            cols.append(j)
            vals.append(w)
            if i != j:
                rows.append(j)
                cols.append(i)
                vals.append(w)
        if n_nodes is None:
            if not rows:
                raise GraphError(
                    "cannot infer n_nodes from an empty edge list; "
                    "pass n_nodes explicitly"
                )
            n_nodes = max(rows) + 1
        adj = sp.coo_array(
            (vals, (rows, cols)), shape=(n_nodes, n_nodes)
        ).tocsr()
        return cls(adj, node_names=node_names)

    @classmethod
    def empty(cls, n_nodes: int) -> "UndirectedGraph":
        """An edgeless undirected graph."""
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        return cls(sp.csr_array((n_nodes, n_nodes), dtype=np.float64))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> sp.csr_array:
        """The symmetric CSR adjacency matrix."""
        return self._adj

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._adj.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (self-loops count once)."""
        n_selfloops = int(np.count_nonzero(self._adj.diagonal()))
        return (self._adj.nnz - n_selfloops) // 2 + n_selfloops

    @property
    def node_names(self) -> list[object] | None:
        """Node names, or ``None`` if the graph is unnamed."""
        return None if self._names is None else list(self._names)

    def name_of(self, index: int) -> object:
        """The name of node ``index`` (the index itself if unnamed)."""
        if self._names is None:
            return index
        return self._names[index]

    def degrees(self, weighted: bool = True) -> np.ndarray:
        """Weighted (default) or unweighted degree of every node.

        Self-loops contribute their weight once (their row-sum value),
        consistent with the normalized-cut volume definition used by the
        clustering algorithms.
        """
        if weighted:
            return np.asarray(self._adj.sum(axis=1)).ravel()
        return np.diff(self._adj.indptr).astype(np.float64)

    def total_weight(self) -> float:
        """Sum of all edge weights, counting each undirected edge once."""
        full = float(self._adj.sum())
        diag = float(self._adj.diagonal().sum())
        return (full - diag) / 2.0 + diag

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the undirected edge ``{i, j}`` exists."""
        return self.edge_weight(i, j) != 0.0

    def edge_weight(self, i: int, j: int) -> float:
        """Weight of the undirected edge ``{i, j}`` (0.0 if absent)."""
        start, end = self._adj.indptr[i], self._adj.indptr[i + 1]
        pos = np.searchsorted(self._adj.indices[start:end], j)
        if pos < end - start and self._adj.indices[start + pos] == j:
            return float(self._adj.data[start + pos])
        return 0.0

    def neighbors(self, i: int) -> np.ndarray:
        """Indices adjacent to node ``i`` (possibly including ``i``)."""
        start, end = self._adj.indptr[i], self._adj.indptr[i + 1]
        return self._adj.indices[start:end].copy()

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Iterate over each undirected edge once as ``(i, j, w)``, i<=j."""
        coo = self._adj.tocoo()
        for i, j, w in zip(coo.row, coo.col, coo.data):
            if i <= j:
                yield int(i), int(j), float(w)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def without_self_loops(self) -> "UndirectedGraph":
        """A copy with the diagonal removed."""
        adj = self._adj.tolil(copy=True)
        adj.setdiag(0.0)
        return UndirectedGraph(
            adj.tocsr(), node_names=self._names, validate=False
        )

    def subgraph(self, nodes: Sequence[int]) -> "UndirectedGraph":
        """The induced subgraph on ``nodes`` (order preserved)."""
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_nodes):
            raise GraphError("subgraph node index out of range")
        sub = self._adj[idx][:, idx]
        names = None if self._names is None else [self._names[i] for i in idx]
        return UndirectedGraph(sub, node_names=names, validate=False)

    def connected_components(self) -> tuple[int, np.ndarray]:
        """``(n_components, labels)`` of the graph."""
        return sp.csgraph.connected_components(self._adj, directed=False)

    def isolated_nodes(self) -> np.ndarray:
        """Indices of nodes with no incident edges (degree zero)."""
        return np.flatnonzero(self.degrees(weighted=True) == 0)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        named = "" if self._names is None else ", named"
        return (
            f"UndirectedGraph(n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges}{named})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        if self.n_nodes != other.n_nodes:
            return False
        diff = (self._adj - other._adj).tocsr()
        diff.eliminate_zeros()
        return diff.nnz == 0 and self._names == other._names

    def __hash__(self) -> int:
        raise TypeError("UndirectedGraph is not hashable")
