"""Input-validation and fault-hardening subsystem.

The two-stage framework (symmetrize, then cluster) is only as reliable
as its inputs. This package provides:

- composable invariant checks returning structured
  :class:`ValidationReport` objects (:mod:`repro.validate.invariants`),
- the strict/lenient ambient context used by the hardened stages
  (:func:`strictness`, :func:`lenient`, :func:`degenerate_event`), and
- the lenient repair path (:func:`repair_graph`).

See ``docs/robustness.md`` for the user-facing guide and
:mod:`repro.datasets.degenerate` for the adversarial corpus the
fault-injection tests sweep through this machinery.
"""

from repro.validate.invariants import (
    VALIDATION_LEVELS,
    ValidationIssue,
    ValidationReport,
    check_all_zero,
    check_dangling_nodes,
    check_finite_weights,
    check_isolated_nodes,
    check_non_negative_weights,
    check_self_loops,
    check_square,
    check_symmetric,
    check_zero_diagonal,
    coerce_level,
    degenerate_event,
    is_strict,
    lenient,
    repair_event,
    repair_graph,
    repair_matrix,
    strictness,
    validate_directed_graph,
    validate_edge_list,
    validate_symmetrization_output,
    validate_undirected_graph,
)

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "check_square",
    "check_finite_weights",
    "check_non_negative_weights",
    "check_self_loops",
    "check_dangling_nodes",
    "check_isolated_nodes",
    "check_symmetric",
    "check_zero_diagonal",
    "check_all_zero",
    "validate_directed_graph",
    "validate_undirected_graph",
    "validate_symmetrization_output",
    "validate_edge_list",
    "repair_matrix",
    "repair_graph",
    "strictness",
    "lenient",
    "is_strict",
    "degenerate_event",
    "repair_event",
    "coerce_level",
    "VALIDATION_LEVELS",
]
