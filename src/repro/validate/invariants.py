"""Composable structural invariant checks for graphs and matrices.

Real directed graphs — Cora, Wikipedia, the Mislove et al. social
networks — arrive with dangling nodes, self-loops, duplicate edges,
isolated vertices and occasionally malformed weights, and degenerate
structure is exactly where directed clustering methods break silently
(Malliaros & Vazirgiannis survey, §5). This module turns those failure
modes into first-class, *inspectable* objects:

- Each ``check_*`` function examines one invariant on a sparse matrix
  and returns a list of :class:`ValidationIssue` (usually zero or one).
- :class:`ValidationReport` aggregates issues with severities, can
  raise a typed :class:`~repro.exceptions.ValidationError` (strict) or
  emit :class:`~repro.exceptions.ValidationWarning` (lenient).
- :func:`validate_directed_graph`, :func:`validate_edge_list` and
  :func:`validate_symmetrization_output` compose the checks for the
  three pipeline boundaries: input construction, file ingestion and
  symmetrization output.
- :func:`repair_graph` implements the lenient repairs-and-warns path:
  non-finite and negative weights are dropped, everything else is kept.

Strictness is ambient: :func:`strictness` / :func:`lenient` install a
context-local flag that :func:`degenerate_event` and the symmetrize /
pagerank / pipeline layers consult to decide between raising a typed
error and warning-and-continuing. The pipeline's ``mode="lenient"``
is implemented on top of this context.
"""

from __future__ import annotations

import contextlib
import warnings
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.exceptions import (
    DegenerateGraphWarning,
    RepairWarning,
    ReproError,
    ValidationError,
    ValidationWarning,
)

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "check_square",
    "check_finite_weights",
    "check_non_negative_weights",
    "check_self_loops",
    "check_dangling_nodes",
    "check_isolated_nodes",
    "check_symmetric",
    "check_zero_diagonal",
    "check_all_zero",
    "validate_directed_graph",
    "validate_undirected_graph",
    "validate_symmetrization_output",
    "validate_edge_list",
    "repair_matrix",
    "repair_graph",
    "strictness",
    "lenient",
    "is_strict",
    "degenerate_event",
    "repair_event",
    "coerce_level",
    "VALIDATION_LEVELS",
]

#: Recognized construction-time validation levels (graph classes map
#: ``validate=True`` to ``"basic"`` and ``validate=False`` to ``"none"``).
VALIDATION_LEVELS = ("none", "basic", "full")

#: How many offending node indices a ValidationIssue samples at most.
_SAMPLE = 8


def coerce_level(validate: bool | str) -> str:
    """Map the graph classes' ``validate=`` argument to a level name.

    ``True`` (the historical default) means ``"basic"``, ``False``
    means ``"none"``; strings must be one of
    :data:`VALIDATION_LEVELS`.
    """
    if validate is True:
        return "basic"
    if validate is False:
        return "none"
    if validate in VALIDATION_LEVELS:
        return str(validate)
    raise ValidationError(
        f"validate must be a bool or one of {VALIDATION_LEVELS}, "
        f"got {validate!r}"
    )


@dataclass(frozen=True)
class ValidationIssue:
    """One invariant violation found by a check.

    Attributes
    ----------
    code:
        Machine-readable identifier, e.g. ``"non_finite_weights"``.
    severity:
        ``"error"`` for violations that make downstream results
        meaningless (NaN weights, asymmetry) or ``"warning"`` for
        structure that is legal but degrades clustering quality
        (dangling nodes, self-loops, isolated vertices).
    message:
        Human-readable description.
    count:
        Number of offending entries/nodes, when meaningful.
    nodes:
        A small sample (up to 8) of offending node indices.
    """

    code: str
    severity: str
    message: str
    count: int = 0
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in ("error", "warning"):
            raise ValueError(f"bad severity {self.severity!r}")


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of running a set of invariant checks.

    Reports compose with ``+`` so per-stage reports can be merged into
    a pipeline-level one.
    """

    issues: tuple[ValidationIssue, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issue was found."""
        return not self.errors

    @property
    def errors(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "error")

    @property
    def warnings(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "warning")

    def __add__(self, other: "ValidationReport") -> "ValidationReport":
        if not isinstance(other, ValidationReport):
            return NotImplemented
        return ValidationReport(self.issues + other.issues)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """One line per issue, errors first."""
        ordered = list(self.errors) + list(self.warnings)
        if not ordered:
            return "ok"
        return "; ".join(
            f"[{i.severity}] {i.code}: {i.message}" for i in ordered
        )

    def raise_errors(
        self, exc_type: type[ReproError] = ValidationError
    ) -> None:
        """Raise ``exc_type`` summarizing all error-severity issues."""
        if not self.errors:
            return
        message = "; ".join(i.message for i in self.errors)
        try:
            raise exc_type(message, report=self)  # type: ignore[call-arg]
        except TypeError:
            raise exc_type(message) from None

    def emit_warnings(
        self,
        category: type[Warning] = ValidationWarning,
        stacklevel: int = 2,
    ) -> None:
        """Emit every warning-severity issue as a python warning."""
        for issue in self.warnings:
            warnings.warn(
                category(f"{issue.code}: {issue.message}", code=issue.code)
                if issubclass(category, ValidationWarning)
                else category(f"{issue.code}: {issue.message}"),
                stacklevel=stacklevel,
            )


# ---------------------------------------------------------------------------
# Individual checks (matrix-level)
# ---------------------------------------------------------------------------


def _sample(indices: np.ndarray) -> tuple[int, ...]:
    return tuple(int(i) for i in indices[:_SAMPLE])


def check_square(matrix: sp.sparray) -> list[ValidationIssue]:
    """An adjacency matrix must be square."""
    if matrix.shape[0] != matrix.shape[1]:
        return [
            ValidationIssue(
                "non_square",
                "error",
                f"adjacency must be square, got shape {matrix.shape}",
            )
        ]
    return []


def check_finite_weights(matrix: sp.sparray) -> list[ValidationIssue]:
    """No NaN or +-inf edge weights."""
    csr = matrix.tocsr()
    if csr.nnz == 0:
        return []
    bad = ~np.isfinite(csr.data)
    n_bad = int(bad.sum())
    if n_bad == 0:
        return []
    rows = np.repeat(
        np.arange(csr.shape[0]), np.diff(csr.indptr)
    )[bad]
    return [
        ValidationIssue(
            "non_finite_weights",
            "error",
            f"edge weights must be finite: {n_bad} NaN/inf entrie(s)",
            count=n_bad,
            nodes=_sample(np.unique(rows)),
        )
    ]


def check_non_negative_weights(matrix: sp.sparray) -> list[ValidationIssue]:
    """No negative edge weights (similarities are non-negative)."""
    csr = matrix.tocsr()
    if csr.nnz == 0:
        return []
    with np.errstate(invalid="ignore"):
        bad = csr.data < 0
    n_bad = int(bad.sum())
    if n_bad == 0:
        return []
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))[bad]
    return [
        ValidationIssue(
            "negative_weights",
            "error",
            f"edge weights must be non-negative: {n_bad} negative "
            "entrie(s)",
            count=n_bad,
            nodes=_sample(np.unique(rows)),
        )
    ]


def check_self_loops(
    matrix: sp.sparray, severity: str = "warning"
) -> list[ValidationIssue]:
    """Self-loops carry no link-similarity information."""
    diag = matrix.tocsr().diagonal()
    loops = np.flatnonzero(diag != 0)
    if loops.size == 0:
        return []
    return [
        ValidationIssue(
            "self_loops",
            severity,
            f"{loops.size} node(s) have self-loops",
            count=int(loops.size),
            nodes=_sample(loops),
        )
    ]


def check_dangling_nodes(matrix: sp.sparray) -> list[ValidationIssue]:
    """Nodes with zero out-degree (random-walk rows are all-zero)."""
    csr = matrix.tocsr()
    out_deg = np.diff(csr.indptr)
    dangling = np.flatnonzero(out_deg == 0)
    if dangling.size == 0:
        return []
    severity = "warning"
    message = f"{dangling.size} node(s) are dangling (no out-links)"
    if dangling.size == csr.shape[0] and csr.shape[0] > 0:
        message = (
            "every node is dangling (no edges at all); random-walk "
            "symmetrization would be identically zero"
        )
    return [
        ValidationIssue(
            "dangling_nodes",
            severity,
            message,
            count=int(dangling.size),
            nodes=_sample(dangling),
        )
    ]


def check_isolated_nodes(matrix: sp.sparray) -> list[ValidationIssue]:
    """Nodes with neither in- nor out-links; they cluster as singletons."""
    csr = matrix.tocsr()
    out_deg = np.diff(csr.indptr)
    in_deg = np.zeros(csr.shape[1], dtype=np.int64)
    np.add.at(in_deg, csr.indices, 1)
    isolated = np.flatnonzero((out_deg == 0) & (in_deg == 0))
    if isolated.size == 0:
        return []
    return [
        ValidationIssue(
            "isolated_nodes",
            "warning",
            f"{isolated.size} node(s) are isolated (no links at all)",
            count=int(isolated.size),
            nodes=_sample(isolated),
        )
    ]


def check_symmetric(
    matrix: sp.sparray, rtol: float = 1e-8
) -> list[ValidationIssue]:
    """Symmetrization outputs must be symmetric up to round-off."""
    csr = matrix.tocsr()
    if csr.shape[0] != csr.shape[1]:
        return []  # reported by check_square
    asym = abs(csr - csr.T)
    max_asym = float(asym.max()) if asym.nnz else 0.0
    scale = float(abs(csr).max()) if csr.nnz else 1.0
    if max_asym <= rtol * max(scale, 1.0):
        return []
    return [
        ValidationIssue(
            "asymmetric",
            "error",
            f"adjacency is not symmetric (max asymmetry {max_asym:.3e})",
        )
    ]


def check_zero_diagonal(matrix: sp.sparray) -> list[ValidationIssue]:
    """Self-similarities should have been dropped from the output."""
    return [
        ValidationIssue(
            i.code.replace("self_loops", "nonzero_diagonal"),
            i.severity,
            i.message.replace("self-loops", "non-zero diagonal entries"),
            count=i.count,
            nodes=i.nodes,
        )
        for i in check_self_loops(matrix)
    ]


def check_all_zero(
    matrix: sp.sparray, had_input_edges: bool = True
) -> list[ValidationIssue]:
    """An all-zero similarity matrix for a non-empty input means the
    symmetrization silently collapsed (the random-walk P = 0 case)."""
    csr = matrix.tocsr()
    csr_nnz = csr.nnz
    if csr_nnz or not had_input_edges:
        return []
    return [
        ValidationIssue(
            "all_zero_output",
            "error",
            "symmetrization produced an all-zero matrix for a graph "
            "that has edges; downstream clustering would silently "
            "return singletons",
        )
    ]


# ---------------------------------------------------------------------------
# Composed validators
# ---------------------------------------------------------------------------


def validate_directed_graph(
    graph_or_matrix: object, level: str = "full"
) -> ValidationReport:
    """Run the input-side invariant suite on a directed adjacency.

    ``level="basic"`` checks only what makes a graph unusable (square,
    finite, non-negative); ``"full"`` adds the structural warnings
    (self-loops, dangling and isolated nodes). ``"none"`` returns an
    empty (passing) report.
    """
    if level not in VALIDATION_LEVELS:
        raise ValidationError(
            f"unknown validation level {level!r}; "
            f"expected one of {VALIDATION_LEVELS}"
        )
    if level == "none":
        return ValidationReport()
    matrix = getattr(graph_or_matrix, "adjacency", graph_or_matrix)
    issues = list(check_square(matrix))
    if not issues:  # remaining checks assume a square matrix
        issues += check_finite_weights(matrix)
        issues += check_non_negative_weights(matrix)
        if level == "full":
            issues += check_self_loops(matrix)
            issues += check_dangling_nodes(matrix)
            issues += check_isolated_nodes(matrix)
    return ValidationReport(tuple(issues))


def validate_undirected_graph(
    graph_or_matrix: object, level: str = "full"
) -> ValidationReport:
    """Input-side suite for undirected adjacencies (adds symmetry)."""
    if level not in VALIDATION_LEVELS:
        raise ValidationError(
            f"unknown validation level {level!r}; "
            f"expected one of {VALIDATION_LEVELS}"
        )
    if level == "none":
        return ValidationReport()
    matrix = getattr(graph_or_matrix, "adjacency", graph_or_matrix)
    issues = list(check_square(matrix))
    if not issues:
        issues += check_finite_weights(matrix)
        issues += check_non_negative_weights(matrix)
        issues += check_symmetric(matrix)
        if level == "full":
            issues += check_self_loops(matrix)
            issues += check_isolated_nodes(matrix)
    return ValidationReport(tuple(issues))


def validate_symmetrization_output(
    matrix: sp.sparray, had_input_edges: bool = True
) -> ValidationReport:
    """Output-side invariants every symmetrization must satisfy:
    symmetric, finite, non-negative, zero diagonal, not silently zero."""
    issues = list(check_square(matrix))
    if not issues:
        issues += check_finite_weights(matrix)
        issues += check_non_negative_weights(matrix)
        issues += check_symmetric(matrix)
        issues += check_zero_diagonal(matrix)
        issues += check_all_zero(matrix, had_input_edges=had_input_edges)
    return ValidationReport(tuple(issues))


def validate_edge_list(
    edges: Iterable[tuple[int, int] | tuple[int, int, float]],
) -> ValidationReport:
    """Pre-construction checks on raw ``(src, dst[, weight])`` tuples.

    Detects negative node ids, non-finite weights and duplicate edges
    *before* CSR conversion silently sums the duplicates away.
    """
    issues: list[ValidationIssue] = []
    seen: set[tuple[int, int]] = set()
    duplicates: set[tuple[int, int]] = set()
    n_negative_ids = 0
    n_bad_weights = 0
    bad_nodes: list[int] = []
    for edge in edges:
        if len(edge) == 2:
            i, j = edge  # type: ignore[misc]
            w = 1.0
        else:
            i, j, w = edge  # type: ignore[misc]
        i, j = int(i), int(j)
        if i < 0 or j < 0:
            n_negative_ids += 1
            bad_nodes.append(min(i, j))
        if not np.isfinite(w):
            n_bad_weights += 1
        key = (i, j)
        if key in seen:
            duplicates.add(key)
        seen.add(key)
    if n_negative_ids:
        issues.append(
            ValidationIssue(
                "negative_node_ids",
                "error",
                f"{n_negative_ids} edge(s) have negative node ids",
                count=n_negative_ids,
                nodes=tuple(bad_nodes[:_SAMPLE]),
            )
        )
    if n_bad_weights:
        issues.append(
            ValidationIssue(
                "non_finite_weights",
                "error",
                f"{n_bad_weights} edge weight(s) are NaN or infinite",
                count=n_bad_weights,
            )
        )
    if duplicates:
        issues.append(
            ValidationIssue(
                "duplicate_edges",
                "warning",
                f"{len(duplicates)} edge(s) appear more than once "
                "(weights will be summed)",
                count=len(duplicates),
                nodes=tuple(i for i, _ in sorted(duplicates))[:_SAMPLE],
            )
        )
    return ValidationReport(tuple(issues))


# ---------------------------------------------------------------------------
# Repair (the lenient path)
# ---------------------------------------------------------------------------


def repair_matrix(
    matrix: sp.sparray,
) -> tuple[sp.csr_array, ValidationReport]:
    """Drop non-finite and negative entries from a sparse matrix.

    Returns the repaired CSR matrix and a report (warning severity)
    describing what was removed. Entries are *dropped*, not clamped:
    a NaN similarity carries no information, and a negative weight has
    no interpretation in any of the paper's symmetrizations.
    """
    csr = matrix.tocsr().copy()
    issues: list[ValidationIssue] = []
    if csr.nnz:
        with np.errstate(invalid="ignore"):
            bad = ~np.isfinite(csr.data) | (csr.data < 0)
        n_bad = int(bad.sum())
        if n_bad:
            csr.data[bad] = 0.0
            csr.eliminate_zeros()
            issues.append(
                ValidationIssue(
                    "repaired_weights",
                    "warning",
                    f"dropped {n_bad} non-finite or negative edge "
                    "weight(s)",
                    count=n_bad,
                )
            )
    return csr, ValidationReport(tuple(issues))


def repair_graph(graph: object) -> tuple[object, ValidationReport]:
    """Lenient repair of a :class:`~repro.graph.DirectedGraph` (or
    undirected): drop unusable entries, keep the rest.

    Non-square adjacencies cannot be repaired and raise
    :class:`~repro.exceptions.ValidationError`.
    """
    from repro.graph.digraph import DirectedGraph
    from repro.graph.ugraph import UndirectedGraph

    matrix = getattr(graph, "adjacency", graph)
    ValidationReport(tuple(check_square(matrix))).raise_errors()
    fixed, report = repair_matrix(matrix)
    if not report.issues:
        return graph, report
    if isinstance(graph, UndirectedGraph):
        # Dropping entries can break symmetry when only one triangle
        # held the bad value; re-symmetrize by max to keep good weights.
        fixed = fixed.maximum(fixed.T).tocsr()
        repaired = UndirectedGraph(
            fixed, node_names=graph.node_names, validate=False
        )
    elif isinstance(graph, DirectedGraph):
        repaired = DirectedGraph(
            fixed, node_names=graph.node_names, validate=False
        )
    else:
        repaired = fixed
    return repaired, report


# ---------------------------------------------------------------------------
# Ambient strictness
# ---------------------------------------------------------------------------

_STRICT: ContextVar[bool] = ContextVar("repro_validation_strict",
                                       default=True)


def is_strict() -> bool:
    """Whether the current context treats degenerate events as errors."""
    return _STRICT.get()


@contextlib.contextmanager
def strictness(strict: bool) -> Iterator[None]:
    """Set the ambient strict/lenient flag for the enclosed block."""
    token = _STRICT.set(bool(strict))
    try:
        yield
    finally:
        _STRICT.reset(token)


def lenient() -> contextlib.AbstractContextManager[None]:
    """Shorthand for ``strictness(False)`` — the repairs-and-warns mode."""
    return strictness(False)


def degenerate_event(
    message: str,
    exc_type: type[ReproError],
    code: str = "degenerate",
    stacklevel: int = 3,
) -> None:
    """Raise ``exc_type`` (strict context) or warn and continue
    (lenient context). The single switch point every hardened stage
    routes its degenerate-input decisions through."""
    if is_strict():
        raise exc_type(message)
    warnings.warn(
        DegenerateGraphWarning(message, code=code), stacklevel=stacklevel
    )


def repair_event(message: str, code: str = "repaired",
                 stacklevel: int = 3) -> None:
    """Emit a :class:`RepairWarning` describing an applied repair."""
    warnings.warn(RepairWarning(message, code=code), stacklevel=stacklevel)
